// ConsistencyScheme — the cache-consistency strategy axis (paper §4,
// Fig 6–8).  The base class owns the machinery every scheme shares: the
// per-key TTR estimators, the reliable push channel (pushes + custodian
// acks + retries), poll service at the home region and the consistency
// packet handlers.  Concrete schemes decide how an update propagates and
// when a cached copy must be validated before being served.
//
// Schemes communicate with the rest of the stack only via packets and
// the EngineContext (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "consistency/ttr.hpp"
#include "core/engine_context.hpp"
#include "net/packet_dispatch.hpp"

namespace precinct::core {

class ConsistencyScheme {
 public:
  explicit ConsistencyScheme(EngineContext& ctx) noexcept : ctx_(ctx) {}
  virtual ~ConsistencyScheme() = default;

  ConsistencyScheme(const ConsistencyScheme&) = delete;
  ConsistencyScheme& operator=(const ConsistencyScheme&) = delete;

  /// Registry name ("none", "plain-push", "pull-every-time",
  /// "push-adaptive-pull", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Claim the packet kinds this module owns (kUpdatePush, kPoll,
  /// kPollReply, kInvalidation, kPushAck).
  void register_handlers(net::PacketDispatcher& dispatch);

  /// One write at `peer` to `key`: bumps the catalog version, applies it
  /// to the updater's own copies, then propagates per the scheme.
  void initiate_update(net::NodeId peer, geo::Key key);

  /// Does a copy with this much TTR left need validating before being
  /// served?  Consulted by the retrieval scheme on every cached serve.
  [[nodiscard]] virtual bool needs_validation(
      double ttr_remaining_s) const noexcept = 0;

  /// Whether the workload should schedule update traffic at all ("none"
  /// returns false; the read-only workload skips the generators).
  [[nodiscard]] virtual bool generates_updates() const noexcept {
    return true;
  }

  /// Route a poll toward `key`'s home region.  Returns false when there
  /// is no home region to poll.
  bool send_poll(net::NodeId from, geo::Key key, std::uint64_t correlation_id,
                 std::uint64_t known_version);

  /// TTR the home/replica custodian would stamp on a copy of `key` now.
  [[nodiscard]] double custodian_ttr_s(geo::Key key) const;

  /// Observe-only projection of one TTR estimator, exposed for the
  /// invariant checker (Eq. 2 bounds audit).
  struct TtrView {
    geo::Key key = 0;
    double ttr_s = 0.0;
    std::uint64_t updates_seen = 0;
  };
  /// Visit every per-key TTR estimator (unspecified order).
  template <typename Fn>
  void visit_ttr(Fn&& fn) const {
    for (const auto& [key, est] : ttr_) {
      fn(TtrView{key, est.ttr_s(), est.updates_seen()});
    }
  }

  /// Observe-only projection of one un-acked push (retry-budget audit).
  struct PushView {
    net::NodeId updater = net::kNoNode;
    geo::Key key = 0;
    int retries_left = 0;
  };
  /// Visit every push awaiting its custodian ack (unspecified order).
  template <typename Fn>
  void visit_pending_pushes(Fn&& fn) const {
    for (const auto& [id, p] : pending_pushes_) {
      fn(PushView{p.updater, p.key, p.retries_left});
    }
  }

 protected:
  /// Scheme-specific propagation of a committed write (flood an
  /// invalidation, push to the key's regions, or nothing).
  virtual void propagate_update(net::NodeId peer, geo::Key key,
                                std::uint64_t version) = 0;

  /// Push phase (Figure 2): route the update to the home region and
  /// every replica region; flooding inside those regions locates the
  /// peer holding the custody copy.
  void push_to_key_regions(net::NodeId peer, geo::Key key,
                           std::uint64_t version);

  EngineContext& ctx_;

 private:
  /// An update push awaiting its custodian acknowledgement; re-sent on
  /// timeout (the paper assumes updates reliably reach the home region,
  /// which over lossy geographic routing requires an ack + retry).
  struct PendingPush {
    net::NodeId updater = net::kNoNode;
    geo::Key key = 0;
    geo::RegionId region = geo::kInvalidRegion;
    std::uint64_t version = 0;
    int retries_left = 0;
    sim::EventHandle timeout;
  };

  void push_update_to_region(net::NodeId peer, geo::Key key,
                             geo::RegionId region, std::uint64_t version);
  void send_push_packet(std::uint64_t push_id);
  void maybe_ack_push(net::NodeId self, const net::Packet& packet);
  /// Returns true when `self` held custody and applied the update.
  bool apply_custodian_update(net::NodeId self, const net::Packet& packet);

  void handle_update_push(net::NodeId self, const net::Packet& packet);
  void handle_poll(net::NodeId self, const net::Packet& packet);
  void handle_poll_reply(net::NodeId self, const net::Packet& packet);
  void handle_invalidation(net::NodeId self, const net::Packet& packet);
  void handle_push_ack(net::NodeId self, const net::Packet& packet);

  std::unordered_map<std::uint64_t, PendingPush> pending_pushes_;
  std::unordered_map<geo::Key, consistency::TtrEstimator> ttr_;
};

/// Read-only workload: no consistency traffic, nothing to validate.
class NoConsistency final : public ConsistencyScheme {
 public:
  using ConsistencyScheme::ConsistencyScheme;
  [[nodiscard]] const char* name() const noexcept override { return "none"; }
  [[nodiscard]] bool needs_validation(double) const noexcept override {
    return false;
  }
  [[nodiscard]] bool generates_updates() const noexcept override {
    return false;
  }

 protected:
  void propagate_update(net::NodeId, geo::Key, std::uint64_t) override {}
};

/// Plain-Push (Cao & Liu): the updater floods the update/invalidation to
/// the entire network.  Stateless but very expensive; the pushed
/// invalidations are the only staleness signal, so no validation.
class PlainPush final : public ConsistencyScheme {
 public:
  using ConsistencyScheme::ConsistencyScheme;
  [[nodiscard]] const char* name() const noexcept override {
    return "plain-push";
  }
  [[nodiscard]] bool needs_validation(double) const noexcept override {
    return false;
  }

 protected:
  void propagate_update(net::NodeId peer, geo::Key key,
                        std::uint64_t version) override;
};

/// Pull-Every-time (Gwertzman & Seltzer): every request served from a
/// cached copy first polls the data's home region to validate it.
class PullEveryTime final : public ConsistencyScheme {
 public:
  using ConsistencyScheme::ConsistencyScheme;
  [[nodiscard]] const char* name() const noexcept override {
    return "pull-every-time";
  }
  [[nodiscard]] bool needs_validation(double) const noexcept override {
    return true;  // validate on every cached serve
  }

 protected:
  void propagate_update(net::NodeId peer, geo::Key key,
                        std::uint64_t version) override {
    push_to_key_regions(peer, key, version);
  }
};

/// Push with Adaptive Pull — the paper's scheme: updates are pushed only
/// to the home and replica regions; cached copies carry a TTR and peers
/// poll the home region only after it expires.
class PushAdaptivePull final : public ConsistencyScheme {
 public:
  using ConsistencyScheme::ConsistencyScheme;
  [[nodiscard]] const char* name() const noexcept override {
    return "push-adaptive-pull";
  }
  [[nodiscard]] bool needs_validation(
      double ttr_remaining_s) const noexcept override {
    return ttr_remaining_s <= 0.0;  // poll only after the TTR lapses
  }

 protected:
  void propagate_update(net::NodeId peer, geo::Key key,
                        std::uint64_t version) override {
    push_to_key_regions(peer, key, version);
  }
};

}  // namespace precinct::core
