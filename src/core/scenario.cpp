#include "core/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "mobility/class_mix.hpp"
#include "mobility/commuter_flow.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/manhattan_grid.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_placement.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace precinct::core {

namespace {

/// One mobility model for `n_nodes` nodes in the given speed band.  The
/// homogeneous fleet and every node class funnel through this, so a
/// class that overrides nothing takes exactly the homogeneous path.
std::unique_ptr<mobility::MobilityModel> make_single_mobility(
    const std::string& model, std::size_t n_nodes, double v_min, double v_max,
    const PrecinctConfig& config, std::uint64_t seed) {
  if (model == "static") {
    return std::make_unique<mobility::StaticPlacement>(
        mobility::StaticPlacement::uniform(n_nodes, config.area, seed));
  }
  if (model == "random-waypoint") {
    mobility::RandomWaypointConfig rwp;
    rwp.area = config.area;
    rwp.v_min = v_min;
    rwp.v_max = v_max;
    rwp.pause_s = config.pause_s;
    return std::make_unique<mobility::RandomWaypoint>(n_nodes, rwp, seed);
  }
  if (model == "random-direction") {
    mobility::RandomDirectionConfig rd;
    rd.area = config.area;
    rd.v_min = v_min;
    rd.v_max = v_max;
    rd.pause_s = config.pause_s;
    return std::make_unique<mobility::RandomDirection>(n_nodes, rd, seed);
  }
  if (model == "gauss-markov") {
    mobility::GaussMarkovConfig gm;
    gm.area = config.area;
    gm.mean_speed = 0.5 * (v_min + v_max);
    return std::make_unique<mobility::GaussMarkov>(n_nodes, gm, seed);
  }
  if (model == "manhattan") {
    mobility::ManhattanGridConfig mg;
    mg.area = config.area;
    mg.street_spacing_m = config.street_spacing_m;
    mg.turn_probability = config.turn_probability;
    mg.v_min = v_min;
    mg.v_max = v_max;
    mg.pause_s = config.pause_s;
    return std::make_unique<mobility::ManhattanGrid>(n_nodes, mg, seed);
  }
  if (model == "commuter") {
    mobility::CommuterFlowConfig cf;
    cf.area = config.area;
    cf.period_s = config.commuter_period_s;
    cf.n_hubs = config.commuter_hubs;
    cf.v_min = v_min;
    cf.v_max = v_max;
    return std::make_unique<mobility::CommuterFlow>(n_nodes, cf, seed);
  }
  throw std::invalid_argument("make_mobility: unknown model '" + model + "'");
}

std::unique_ptr<mobility::MobilityModel> make_mobility(
    const PrecinctConfig& config) {
  const std::uint64_t seed = support::hash_combine(config.seed, 0x0b17);
  const std::string model =
      config.mobile ? config.mobility_model : std::string("static");
  if (config.node_classes.empty()) {
    return make_single_mobility(model, config.n_nodes, config.v_min,
                                config.v_max, config, seed);
  }
  // Heterogeneous fleet: one sub-model per class over its contiguous id
  // range.  Class 0 draws from the plain mobility seed so a single class
  // with no overrides is byte-identical to the homogeneous fleet; later
  // classes get their own streams.
  std::vector<std::unique_ptr<mobility::MobilityModel>> parts;
  parts.reserve(config.node_classes.size());
  for (std::size_t k = 0; k < config.node_classes.size(); ++k) {
    const NodeClassConfig& cls = config.node_classes[k];
    const std::uint64_t class_seed =
        k == 0 ? seed : support::hash_combine(config.seed, 0xC1A5u + k);
    const std::string cls_model = cls.fixed ? std::string("static") : model;
    const double cls_v_max = cls.speed > 0.0 ? cls.speed : config.v_max;
    const double cls_v_min =
        cls.speed > 0.0 ? std::min(config.v_min, cls.speed) : config.v_min;
    parts.push_back(make_single_mobility(cls_model, cls.count, cls_v_min,
                                         cls_v_max, config, class_seed));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return std::make_unique<mobility::ClassMix>(std::move(parts));
}

/// Fastest node the radio must bound for: fixed classes pin their nodes,
/// class speed overrides cap theirs, everything else moves at v_max.
double effective_v_max(const PrecinctConfig& config) {
  if (config.node_classes.empty()) return config.v_max;
  double v = 0.0;
  for (const NodeClassConfig& cls : config.node_classes) {
    if (cls.fixed) continue;
    v = std::max(v, cls.speed > 0.0 ? cls.speed : config.v_max);
  }
  return v;
}

}  // namespace

Scenario::Scenario(const PrecinctConfig& config)
    : config_((config.validate(), config)),
      catalog_(config.catalog, support::hash_combine(config.seed, 0xCA7A)),
      mobility_(make_mobility(config)) {
  net::WirelessConfig wireless = config.wireless;
  wireless.area = config.area;
  wireless.max_node_speed_mps = std::max(wireless.max_node_speed_mps,
                                         1.25 * effective_v_max(config));
  net_ = std::make_unique<net::WirelessNet>(
      sim_, *mobility_, wireless, config.energy_model,
      support::hash_combine(config.seed, 0x2ad0));
  engine_ = std::make_unique<PrecinctEngine>(
      config, sim_, *net_,
      geo::RegionTable::grid(config.area, config.regions_x, config.regions_y),
      catalog_);
}

sim::Tracer& Scenario::enable_tracing(std::size_t capacity) {
  if (!tracer_) {
    tracer_ = std::make_unique<sim::Tracer>(capacity);
    tracer_->enable_all();
    engine_->set_tracer(tracer_.get());
    net_->set_tracer(tracer_.get());
  }
  return *tracer_;
}

Metrics Scenario::run() {
  if (ran_) throw std::logic_error("Scenario::run: already ran");
  ran_ = true;
  engine_->initialize();
  sim_.run_until(config_.warmup_s);
  engine_->start_measurement();
  sim_.run_until(config_.end_time_s());
  return engine_->finalize();
}

Metrics run_scenario(const PrecinctConfig& config) {
  Scenario scenario(config);
  return scenario.run();
}

std::vector<Metrics> run_seeds(PrecinctConfig config, std::size_t n_seeds) {
  std::vector<Metrics> results(n_seeds);
  const std::uint64_t base_seed = config.seed;
  support::parallel_for(n_seeds, [&](std::size_t i) {
    PrecinctConfig c = config;
    c.seed = base_seed + i;
    results[i] = run_scenario(c);
  });
  return results;
}

Metrics merge_metrics(const std::vector<Metrics>& runs) {
  Metrics total;
  for (const Metrics& m : runs) {
    total.requests_issued += m.requests_issued;
    total.requests_completed += m.requests_completed;
    total.requests_failed += m.requests_failed;
    total.own_cache_hits += m.own_cache_hits;
    total.regional_hits += m.regional_hits;
    total.en_route_hits += m.en_route_hits;
    total.home_region_hits += m.home_region_hits;
    total.replica_hits += m.replica_hits;
    total.latency_s.merge(m.latency_s);
    total.latency_q.merge(m.latency_q);
    for (std::size_t i = 0; i < total.latency_by_class.size(); ++i) {
      total.latency_by_class[i].merge(m.latency_by_class[i]);
    }
    total.bytes_requested += m.bytes_requested;
    total.bytes_hit += m.bytes_hit;
    total.updates_initiated += m.updates_initiated;
    total.cache_served_valid += m.cache_served_valid;
    total.false_hits += m.false_hits;
    total.polls_sent += m.polls_sent;
    total.consistency_messages += m.consistency_messages;
    total.energy_total_mj += m.energy_total_mj;
    total.energy_broadcast_mj += m.energy_broadcast_mj;
    total.energy_p2p_mj += m.energy_p2p_mj;
    total.energy_channel_discard_mj += m.energy_channel_discard_mj;
    total.messages_sent += m.messages_sent;
    total.bytes_sent += m.bytes_sent;
    total.wire_bytes_sent += m.wire_bytes_sent;
    total.wire_bytes_received += m.wire_bytes_received;
    total.frames_lost += m.frames_lost;
    total.frames_dropped_by_channel += m.frames_dropped_by_channel;
    for (std::size_t i = 0; i < total.channel_drops_by_cause.size(); ++i) {
      total.channel_drops_by_cause[i] += m.channel_drops_by_cause[i];
    }
    total.retransmissions += m.retransmissions;
    total.duplicate_responses_suppressed += m.duplicate_responses_suppressed;
    total.custody_handoffs += m.custody_handoffs;
    total.events_executed += m.events_executed;
  }
  return total;
}

}  // namespace precinct::core
