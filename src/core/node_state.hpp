// Structure-of-arrays node state: the simulator's hot-path view of every
// node, one contiguous column per field (DESIGN.md §12).
//
// The dominant loops — neighbor discovery, GPSR next-hop/planarization,
// spatial-grid rebuilds, custody membership sweeps — each touch one or
// two fields of *every* node.  Scattered per-node structs (PeerState is
// hundreds of bytes around its CacheStore) turn those sweeps into
// strided cache misses; parallel arrays make them linear scans the
// compiler can vectorize.
//
// Ownership and coherence: the radio substrate (net::WirelessNet) owns
// the instance and keeps the position/alive columns current; the engine
// writes the region column through EngineContext::set_region so
// PeerState::region and the column never diverge.  Protocol modules do
// not see these arrays — they keep going through the existing seams
// (WirelessNet::position/neighbors, NeighborProvider, CacheStore); only
// substrate internals and engine-level full-population sweeps read the
// columns directly.
//
// Positions are a lazy per-node cache over the mobility trajectory
// oracle, keyed on the exact sim-time stamp of the last refresh: the
// first query for a node at time t pays the virtual position_at call,
// every repeat at the same t is two array reads.  Mobility models derive
// each node's trajectory from its own RNG stream, so refresh order and
// frequency cannot change where anyone is.
//
// Header-only: net/ and routing/ sit below core/ in the library graph
// and link no core:: symbols.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/geometry.hpp"
#include "geo/region_table.hpp"
#include "mobility/mobility_model.hpp"

namespace precinct::core {

class NodeStateSoA {
 public:
  /// Stamp value no sim time ever takes (the clock is >= 0).
  static constexpr double kNever = -1.0;

  explicit NodeStateSoA(std::size_t n)
      : x_(n, 0.0),
        y_(n, 0.0),
        pos_stamp_(n, kNever),
        speed_(n, 0.0),
        speed_stamp_(n, kNever),
        alive_(n, 1),
        fixed_(n, 0),
        region_(n, geo::kInvalidRegion) {}

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }

  // -- positions (lazy cache over the mobility oracle) ----------------------

  /// Node `i`'s position at time `now`, consulting `mobility` only when
  /// the cached stamp is stale.  `now` must be non-decreasing per node
  /// (the mobility contract), which the monotone sim clock guarantees.
  [[nodiscard]] geo::Point position_cached(std::size_t i, double now,
                                           mobility::MobilityModel& mobility) {
    assert(i < x_.size());
    if (pos_stamp_[i] != now) {
      const geo::Point p = mobility.position_at(i, now);
      x_[i] = p.x;
      y_[i] = p.y;
      pos_stamp_[i] = now;
    }
    return {x_[i], y_[i]};
  }

  /// Refresh every node's position column to time `now` (mobility
  /// advancement).  After this, x()/y() are a coherent snapshot and
  /// position_cached is pure array reads until the clock moves.
  void sync_positions(double now, mobility::MobilityModel& mobility) {
    const std::size_t n = x_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (pos_stamp_[i] == now) continue;
      const geo::Point p = mobility.position_at(i, now);
      x_[i] = p.x;
      y_[i] = p.y;
      pos_stamp_[i] = now;
    }
  }

  /// Node `i`'s scalar speed at `now` (same lazy-stamp discipline).
  [[nodiscard]] double speed_cached(std::size_t i, double now,
                                    mobility::MobilityModel& mobility) {
    assert(i < speed_.size());
    if (speed_stamp_[i] != now) {
      speed_[i] = mobility.speed_at(i, now);
      speed_stamp_[i] = now;
    }
    return speed_[i];
  }

  /// Node `i`'s position straight from the columns, with no freshness
  /// check.  Only valid when the caller knows the columns are current at
  /// the query time — e.g. a time-invariant mobility model whose
  /// trajectories were synced once (WirelessNet's static-world path).
  [[nodiscard]] geo::Point position(std::size_t i) const {
    assert(i < x_.size());
    return {x_[i], y_[i]};
  }

  [[nodiscard]] const double* x() const noexcept { return x_.data(); }
  [[nodiscard]] const double* y() const noexcept { return y_.data(); }

  // -- liveness -------------------------------------------------------------

  [[nodiscard]] bool alive(std::size_t i) const {
    assert(i < alive_.size());
    return alive_[i] != 0;
  }
  void set_alive(std::size_t i, bool a) {
    assert(i < alive_.size());
    alive_[i] = a ? 1 : 0;
  }
  [[nodiscard]] const std::uint8_t* alive_data() const noexcept {
    return alive_.data();
  }

  // -- fixed infrastructure ---------------------------------------------------
  // Heterogeneous fleets (config node classes) mark roadside units here;
  // they never move, so region checks skip them and custody placement
  // prefers them as stable anchors.  All-zero for homogeneous fleets.

  [[nodiscard]] bool fixed(std::size_t i) const {
    assert(i < fixed_.size());
    return fixed_[i] != 0;
  }
  void set_fixed(std::size_t i, bool f) {
    assert(i < fixed_.size());
    fixed_[i] = f ? 1 : 0;
  }
  [[nodiscard]] const std::uint8_t* fixed_data() const noexcept {
    return fixed_.data();
  }

  // -- region membership ----------------------------------------------------

  [[nodiscard]] geo::RegionId region(std::size_t i) const {
    assert(i < region_.size());
    return region_[i];
  }
  void set_region(std::size_t i, geo::RegionId r) {
    assert(i < region_.size());
    region_[i] = r;
  }
  [[nodiscard]] const geo::RegionId* region_data() const noexcept {
    return region_.data();
  }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> pos_stamp_;
  std::vector<double> speed_;
  std::vector<double> speed_stamp_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> fixed_;
  std::vector<geo::RegionId> region_;
};

}  // namespace precinct::core
