#include "core/retrieval_baselines.hpp"

#include "routing/expanding_ring.hpp"

namespace precinct::core {

void BaselineRetrieval::start_flood(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  const net::NodeId peer = pending.requester;
  int ttl = ctx_.config.network_flood_ttl;
  double wait = ctx_.config.remote_timeout_s;
  if (expanding()) {
    pending.phase = Phase::kRing;
    const auto ttls = routing::expanding_ring_ttls(ctx_.config.ring);
    if (pending.ring_index >= static_cast<int>(ttls.size())) {
      fail_request(request_id);
      return;
    }
    ttl = ttls[static_cast<std::size_t>(pending.ring_index)];
    wait = ctx_.config.ring.retry_wait_s;
  } else {
    pending.phase = Phase::kFlood;
  }
  net::Packet packet =
      ctx_.make_packet(net::PacketKind::kRequest, peer, pending.key);
  packet.mode = net::RouteMode::kNetworkFlood;
  packet.ttl = ttl;
  packet.request_id = request_id;
  ctx_.flood.mark_seen(peer, packet.id);
  ctx_.net.broadcast(packet);

  pending.timeout = ctx_.sim.schedule(wait, [this, request_id] {
    on_timeout(request_id, pending_.count(request_id)
                               ? pending_.at(request_id).phase
                               : Phase::kFlood);
  });
}

void BaselineRetrieval::handle_request(net::NodeId self,
                                       const net::Packet& packet) {
  // Baseline searches are network floods; requests never arrive scoped
  // or geographically routed.
  if (packet.mode == net::RouteMode::kNetworkFlood) {
    handle_request_network_flood(self, packet);
  }
}

void FloodingRetrieval::on_phase_timeout(std::uint64_t request_id,
                                         Phase phase) {
  if (phase == Phase::kFlood) fail_request(request_id);
}

void ExpandingRingRetrieval::on_phase_timeout(std::uint64_t request_id,
                                              Phase phase) {
  if (phase != Phase::kRing) return;
  ++pending_.at(request_id).ring_index;
  start_flood(request_id);
}

}  // namespace precinct::core
