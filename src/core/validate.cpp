#include <algorithm>
#include <stdexcept>
#include <string>

#include "channel/channel_registry.hpp"
#include "check/categories.hpp"
#include "core/config.hpp"
#include "core/scheme_registry.hpp"

namespace precinct::core {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("PrecinctConfig: " + what);
}
}  // namespace

void PrecinctConfig::validate() const {
  if (n_nodes == 0) fail("n_nodes must be > 0");
  if (area.width() <= 0.0 || area.height() <= 0.0) {
    fail("area must have positive extent");
  }
  if (regions_x == 0 || regions_y == 0) fail("region grid must be >= 1x1");
  if (wireless.range_m <= 0.0) fail("radio range must be > 0");
  if (wireless.bandwidth_bps <= 0.0) fail("bandwidth must be > 0");
  {
    static constexpr const char* kMobilityModels[] = {
        "static",       "random-waypoint", "random-direction",
        "gauss-markov", "manhattan",       "commuter"};
    bool known = false;
    for (const char* name : kMobilityModels) known |= mobility_model == name;
    if (!known) fail("unknown mobility model '" + mobility_model + "'");
  }
  if (mobile && mobility_model != "static") {
    if (v_min <= 0.0 || v_max < v_min) fail("need 0 < v_min <= v_max");
    if (pause_s < 0.0) fail("pause must be >= 0");
    if (region_check_interval_s <= 0.0) {
      fail("region check interval must be > 0");
    }
  }
  if (street_spacing_m <= 0.0) fail("street spacing must be > 0");
  if (turn_probability < 0.0 || turn_probability > 1.0) {
    fail("turn probability must be in [0, 1]");
  }
  if (mobile && mobility_model == "manhattan" &&
      street_spacing_m >= std::min(area.width(), area.height())) {
    fail("street spacing too wide for the area (need a 2x2 intersection "
         "grid)");
  }
  if (commuter_period_s <= 0.0) fail("commuter period must be > 0");
  if (commuter_hubs == 0) fail("commuter fleet needs at least one hub");
  // Heterogeneous fleet: classes are the canonical name-sorted list with
  // contiguous id ranges, so ordering and counts must be well-formed
  // before any subsystem derives per-node attributes from them.
  if (!node_classes.empty()) {
    std::size_t total = 0;
    for (std::size_t k = 0; k < node_classes.size(); ++k) {
      const NodeClassConfig& cls = node_classes[k];
      if (cls.name.empty()) fail("node class needs a name");
      for (const char ch : cls.name) {
        const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '_';
        if (!ok) {
          fail("node class name '" + cls.name +
               "' must use only [A-Za-z0-9_]");
        }
      }
      if (k > 0 && !(node_classes[k - 1].name < cls.name)) {
        fail("node classes must be sorted by name and unique (got '" +
             node_classes[k - 1].name + "' before '" + cls.name + "')");
      }
      if (cls.count == 0) {
        fail("node class '" + cls.name + "' must have count > 0");
      }
      if (cls.cache_kb < 0.0) {
        fail("node class '" + cls.name + "' cache_kb must be >= 0");
      }
      if (cls.speed < 0.0) {
        fail("node class '" + cls.name + "' speed must be >= 0");
      }
      total += cls.count;
    }
    if (total != n_nodes) {
      fail("node class counts must sum to n_nodes (" +
           std::to_string(total) + " != " + std::to_string(n_nodes) + ")");
    }
  }
  if (catalog.n_items == 0) fail("catalog needs at least one item");
  if (catalog.min_item_bytes == 0 ||
      catalog.max_item_bytes < catalog.min_item_bytes) {
    fail("bad catalog item size range");
  }
  if (zipf_theta < 0.0) fail("zipf theta must be >= 0");
  if (!(request_rate_multiplier > 0.0)) {
    fail("request rate multiplier must be > 0");
  }
  if (zipf_drift_per_s != 0.0 && zipf_drift_step_s <= 0.0) {
    fail("zipf drift step must be > 0 when drift is enabled");
  }
  if (mean_request_interval_s <= 0.0) fail("request interval must be > 0");
  if (updates_enabled && mean_update_interval_s <= 0.0) {
    fail("update interval must be > 0");
  }
  if (cache_fraction < 0.0 || cache_fraction > 1.0) {
    fail("cache fraction must be in [0, 1]");
  }
  if (ttr_alpha < 0.0 || ttr_alpha > 1.0) fail("ttr alpha must be in [0, 1]");
  if (ttr_initial_s < 0.0) fail("initial TTR must be >= 0");
  if (push_retries < 0) fail("push retries must be >= 0");
  if (use_beacons) {
    if (beacon_interval_s <= 0.0) fail("beacon interval must be > 0");
    if (neighbor_lifetime_s < beacon_interval_s) {
      fail("neighbor lifetime must cover at least one beacon interval");
    }
  }
  if (region_flood_ttl < 1) fail("region flood TTL must be >= 1");
  if (network_flood_ttl < 1) fail("network flood TTL must be >= 1");
  if (max_route_hops < 1) fail("route hop budget must be >= 1");
  if (regional_timeout_s <= 0.0 || remote_timeout_s <= 0.0) {
    fail("timeouts must be > 0");
  }
  if (replica_count + 1 >
      static_cast<std::size_t>(regions_x) * regions_y) {
    fail("replica_count needs at least replica_count+1 regions");
  }
  if (request_retries < 0) fail("request retries must be >= 0");
  // Channel-model knobs: names resolve in the channel registry and every
  // probability/duration is in range (same fail-fast contract as the
  // scheme names below).
  {
    const channel::ChannelConfig& ch = wireless.channel;
    if (!channel::ChannelRegistry::instance().has(ch.model)) {
      fail("unknown channel model '" + ch.model + "'");
    }
    if (ch.loss_p < 0.0 || ch.loss_p > 1.0) {
      fail("channel loss probability must be in [0, 1]");
    }
    if (ch.edge_start_fraction < 0.0 || ch.edge_start_fraction > 1.0) {
      fail("channel edge_start_fraction must be in [0, 1]");
    }
    if (ch.edge_loss_p < 0.0 || ch.edge_loss_p > 1.0) {
      fail("channel edge loss probability must be in [0, 1]");
    }
    if (ch.ge_enter_burst_p < 0.0 || ch.ge_enter_burst_p > 1.0) {
      fail("channel burst-entry probability must be in [0, 1]");
    }
    if (ch.ge_mean_burst_frames < 0.0) {
      fail("channel mean burst length must be >= 0");
    }
    if (ch.ge_loss_good < 0.0 || ch.ge_loss_good > 1.0 ||
        ch.ge_loss_bad < 0.0 || ch.ge_loss_bad > 1.0) {
      fail("channel per-state loss probabilities must be in [0, 1]");
    }
    for (const channel::Blackout& b : ch.blackouts) {
      if (b.end_s < b.start_s) fail("channel blackout window must not end before it starts");
    }
    for (const channel::Partition& w : ch.partitions) {
      if (w.end_s < w.start_s) fail("channel partition window must not end before it starts");
    }
  }
  if (dynamic_regions) {
    if (region_reconfig_interval_s <= 0.0) {
      fail("region reconfig interval must be > 0");
    }
    if (max_region_peers <= min_region_peers) {
      fail("max_region_peers must exceed min_region_peers");
    }
  }
  if (prefetch_count > catalog.n_items) {
    fail("prefetch_count cannot exceed the catalog size");
  }
  if (crash_rate_per_s < 0.0) fail("crash rate must be >= 0");
  if (join_rate_per_s < 0.0) fail("join rate must be >= 0");
  if (graceful_fraction < 0.0 || graceful_fraction > 1.0) {
    fail("graceful fraction must be in [0, 1]");
  }
  if (warmup_s < 0.0 || measure_s <= 0.0) {
    fail("warmup must be >= 0 and measure window > 0");
  }
  // Sharded-execution knobs (DESIGN.md §11 tiled cities, §13 world
  // sharding).  `shards` with a 1x1 tile grid selects world sharding: one
  // world cut into region-column domains with real radio traffic across
  // the cut.  Its lookahead is derived from the radio timing, so the
  // gateway knobs — which belong to the tiled-city backhaul — must be
  // quiet.
  if (shards == 0) fail("shards must be >= 1");
  if (tiles_x == 0 || tiles_y == 0) fail("tile grid must be >= 1x1");
  if (gateway_latency_s < 0.0) fail("gateway latency must be >= 0");
  if (gateway_interval_s < 0.0) fail("gateway interval must be >= 0");
  const bool tiled = static_cast<std::uint64_t>(tiles_x) * tiles_y > 1;
  if (tiled && gateway_latency_s <= 0.0) {
    fail("a tiled world needs gateway latency > 0 (it is the conservative "
         "lookahead)");
  }
  if (!tiled && shards > 1) {
    if (gateway_latency_s != 0.0) {
      fail("gateway_latency has no effect in a world-sharded run — the "
           "lookahead is derived from the radio MAC/propagation timing; "
           "set gateway_latency = 0 (or configure tiles for a tiled city)");
    }
    if (gateway_interval_s > 0.0) {
      fail("gateway traffic needs a tiled world (tiles > 1x1); a "
           "world-sharded run carries real radio frames across the cut");
    }
    if (dynamic_regions) {
      fail("dynamic_regions reconfigures the region table globally and "
           "cannot be world-sharded; run shards = 1 or a tiled world");
    }
  }
  // Real-transport knobs (DESIGN.md §14).  The daemon/ctl address plan
  // needs the whole fleet's ports inside the unprivileged range.
  if (transport_base_port < 1024 || transport_base_port > 65000) {
    fail("transport_base_port must be in [1024, 65000]");
  }
  if (transport_pace != "asap" && transport_pace != "realtime") {
    fail("transport_pace must be 'asap' or 'realtime'");
  }
  if (!(transport_speedup > 0.0)) fail("transport_speedup must be > 0");
  if (transport_status_interval_s < 0.0) {
    fail("transport_status_interval must be >= 0");
  }
  if (!(transport_retry_s > 0.0)) fail("transport_retry must be > 0");
  if (!(transport_timeout_s > transport_retry_s)) {
    fail("transport_timeout must exceed transport_retry");
  }
  if (transport_linger_s < 0.0) fail("transport_linger must be >= 0");
  // Correctness-harness knobs: category names must parse and the audit
  // stride must be at least one event.
  if (!check.empty()) {
    try {
      (void)check::parse_categories(check);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  if (check_stride == 0) fail("check stride must be >= 1");
  // Scheme wiring: names must resolve in the registry, and the
  // combination must make sense.  The unstructured baselines search by
  // flooding, without the region infrastructure the pull-based schemes
  // poll — running them together would silently measure nonsense.
  if (!retrieval_scheme.empty() &&
      !SchemeRegistry::instance().has_retrieval(retrieval_scheme)) {
    fail("unknown retrieval scheme '" + retrieval_scheme + "'");
  }
  if (!consistency_scheme.empty() &&
      !SchemeRegistry::instance().has_consistency(consistency_scheme)) {
    fail("unknown consistency scheme '" + consistency_scheme + "'");
  }
  const bool baseline_retrieval =
      retrieval_scheme.empty() && (retrieval == RetrievalKind::kFlooding ||
                                   retrieval == RetrievalKind::kExpandingRing);
  const bool polling_consistency =
      consistency_scheme.empty() &&
      (consistency == consistency::Mode::kPullEveryTime ||
       consistency == consistency::Mode::kPushAdaptivePull);
  if (baseline_retrieval && polling_consistency) {
    fail(std::string("the '") + to_string(retrieval) +
         "' baseline has no region-based lookup, so the '" +
         consistency::to_string(consistency) +
         "' scheme's home-region polling is meaningless; use consistency = "
         "none or plain-push with baseline retrieval");
  }
}

}  // namespace precinct::core
