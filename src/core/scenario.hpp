// Scenario: builds the whole stack (mobility -> radio -> engine) from one
// PrecinctConfig, runs warm-up + measurement, and returns Metrics.
//
// run_seeds() fans independent replications across a thread pool — each
// replication owns its entire stack, so there is no shared mutable state
// (the parallel-sweep pattern from DESIGN.md §3).
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "mobility/mobility_model.hpp"
#include "net/wireless_net.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "workload/data_catalog.hpp"

namespace precinct::core {

class Scenario {
 public:
  explicit Scenario(const PrecinctConfig& config);

  /// Run warm-up + measurement; returns metrics for the window.  One-shot.
  Metrics run();

  /// Run only until `t` (for tests that drive the engine manually).
  void run_until(double t) { sim_.run_until(t); }

  /// Attach (and own) an event tracer; returns it for configuration.
  /// Call before run().
  sim::Tracer& enable_tracing(std::size_t capacity = 4096);

  [[nodiscard]] PrecinctEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::WirelessNet& network() noexcept { return *net_; }
  [[nodiscard]] workload::DataCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const PrecinctConfig& config() const noexcept {
    return config_;
  }

 private:
  PrecinctConfig config_;
  sim::Simulator sim_;
  workload::DataCatalog catalog_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<net::WirelessNet> net_;
  std::unique_ptr<PrecinctEngine> engine_;
  std::unique_ptr<sim::Tracer> tracer_;
  bool ran_ = false;
};

/// Convenience: build, run, return.
[[nodiscard]] Metrics run_scenario(const PrecinctConfig& config);

/// Run `n_seeds` independent replications (seeds seed, seed+1, ...) in
/// parallel and return each window's metrics.
[[nodiscard]] std::vector<Metrics> run_seeds(PrecinctConfig config,
                                             std::size_t n_seeds);

/// Merge replication metrics into one aggregate (counters summed, latency
/// distributions merged).
[[nodiscard]] Metrics merge_metrics(const std::vector<Metrics>& runs);

}  // namespace precinct::core
