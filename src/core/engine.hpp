// PrecinctEngine — thin facade over the layered protocol modules.
//
// The engine owns the simulation substrate (radio hookup, regions,
// catalog, per-peer state, metrics) and wires the pluggable modules
// together through an EngineContext: the RetrievalScheme (data search),
// the ConsistencyScheme (updates/validation), the CustodyManager
// (placement, handoff, churn, region management) and the WorkloadDriver
// (request/update/beacon generators, failure injection).  Received
// packets route to the owning module through a typed per-PacketKind
// dispatch table; which scheme implementations run is resolved by name
// through the SchemeRegistry, so new schemes plug in without touching
// this file.  See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/consistency_scheme.hpp"
#include "core/custody_manager.hpp"
#include "core/engine_context.hpp"
#include "core/metrics.hpp"
#include "core/retrieval_scheme.hpp"
#include "core/workload_driver.hpp"
#include "net/packet_dispatch.hpp"

namespace precinct::core {

class PrecinctEngine {
 public:
  PrecinctEngine(const PrecinctConfig& config, sim::Simulator& simulator,
                 net::WirelessNet& network, geo::RegionTable region_table,
                 workload::DataCatalog& catalog);

  /// Detaches the invariant checker's post-event hook (the simulator may
  /// outlive the engine).
  ~PrecinctEngine();

  PrecinctEngine(const PrecinctEngine&) = delete;
  PrecinctEngine& operator=(const PrecinctEngine&) = delete;

  /// Enter world-sharded mode (DESIGN.md §13): this engine simulates only
  /// the nodes `view.owner` maps to `view.domain`; workload generators,
  /// beacons, failure injection and static-copy placement are gated to
  /// owned nodes, and correlation ids stride by the domain count.  Must
  /// be called before initialize().
  void set_shard_view(const ShardView& view) {
    ctx_.shard = view;
    ctx_.stride_correlation_ids(view.domain + 1, view.n_domains);
  }

  /// Place initial custody/replica copies and schedule workload generators,
  /// region checks and failure injection.  Call once before running.
  void initialize();

  /// Snapshot counters; everything before this is warm-up.
  void start_measurement();

  /// Compute the metrics for the measurement window.
  [[nodiscard]] Metrics finalize();

  // -- direct drivers (used by tests and examples) ---------------------------

  /// Issue one data request at `peer` for `key` right now.
  void issue_request(net::NodeId peer, geo::Key key) {
    retrieval_->issue(peer, key, /*prefetch=*/false);
  }

  /// Issue an uncounted background fetch (prefetching): traffic and
  /// energy are charged but request metrics are not touched.
  void issue_prefetch(net::NodeId peer, geo::Key key) {
    retrieval_->issue(peer, key, /*prefetch=*/true);
  }

  /// Initiate one update at `peer` for `key` right now.
  void issue_update(net::NodeId peer, geo::Key key) {
    consistency_->initiate_update(peer, key);
  }

  // -- introspection -----------------------------------------------------------

  [[nodiscard]] const cache::CacheStore& cache_of(net::NodeId peer) const {
    return peers_.at(peer).cache;
  }
  /// Test seam: direct mutable access to a peer's cache, used by the
  /// harness tests to deliberately corrupt state and prove the checker
  /// catches it.  Protocol code must never call this.
  [[nodiscard]] cache::CacheStore& mutable_cache_of(net::NodeId peer) {
    return peers_.at(peer).cache;
  }
  /// Installed invariant checker (null when config.check is empty).
  [[nodiscard]] const check::InvariantChecker* checker() const noexcept {
    return checker_.get();
  }
  [[nodiscard]] geo::RegionId region_of(net::NodeId peer) const {
    return peers_.at(peer).region;
  }
  [[nodiscard]] const geo::RegionTable& region_table() const noexcept {
    return regions_;
  }
  [[nodiscard]] const geo::GeoHash& geo_hash() const noexcept { return hash_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t pending_requests() const noexcept {
    return retrieval_->pending_count();
  }
  /// Custodian (static-space holder) count for a key across live peers.
  [[nodiscard]] std::size_t custody_count(geo::Key key) const {
    return custody_->custody_count(key);
  }
  /// Lifetime geographic-forwarding drop counters (the measurement-window
  /// delta is surfaced as Metrics::routing by finalize()).
  [[nodiscard]] const RoutingStats& routing_stats() const noexcept {
    return ctx_.route_drops;
  }
  /// The receive-path dispatch table (introspection for tests).
  [[nodiscard]] const net::PacketDispatcher& dispatcher() const noexcept {
    return dispatch_;
  }
  /// Names of the installed scheme implementations.
  [[nodiscard]] const char* retrieval_scheme_name() const noexcept {
    return retrieval_->name();
  }
  [[nodiscard]] const char* consistency_scheme_name() const noexcept {
    return consistency_->name();
  }

  /// Crash a peer mid-run; `graceful` hands custody off first (§2.4).
  void fail_peer(net::NodeId peer, bool graceful) {
    custody_->fail_peer(peer, graceful);
  }

  /// Bring a crashed peer back with fresh state (empty caches, no
  /// custody); it resumes issuing requests and beaconing.
  void revive_peer(net::NodeId peer) { custody_->revive_peer(peer); }

  /// Attach an event tracer (nullptr detaches).  Not owned.
  void set_tracer(sim::Tracer* tracer) noexcept { ctx_.tracer = tracer; }

  // -- region management (§2.1) ----------------------------------------------

  /// Merge regions `a` and `b`: updates the table, floods the new table
  /// through the network at `initiator`'s cost, and relocates custody of
  /// every key whose home/replica set changed.  Returns the new region's
  /// id, or nullopt if either id is unknown.
  std::optional<geo::RegionId> merge_regions(geo::RegionId a, geo::RegionId b,
                                             net::NodeId initiator) {
    return custody_->merge_regions(a, b, initiator);
  }

  /// Separate a region into two halves (same dissemination/relocation
  /// protocol as merge_regions).
  std::optional<std::pair<geo::RegionId, geo::RegionId>> separate_region(
      geo::RegionId id, net::NodeId initiator) {
    return custody_->separate_region(id, initiator);
  }

  /// Peer count per region id (live peers only).
  [[nodiscard]] std::size_t region_population(geo::RegionId region) const {
    return custody_->region_population(region);
  }

 private:
  /// Receive-path prelude shared by every packet kind (position
  /// piggybacking, void-recovery gating), then table dispatch.
  void on_receive(net::NodeId self, const net::Packet& packet);
  void take_timeline_sample();

  PrecinctConfig config_;
  sim::Simulator& sim_;
  net::WirelessNet& net_;
  geo::RegionTable regions_;
  geo::GeoHash hash_;
  workload::DataCatalog& catalog_;
  workload::ZipfGenerator zipf_;
  std::unique_ptr<routing::BeaconNeighborProvider> beacons_;
  std::unique_ptr<routing::Gpsr> gpsr_;
  routing::FloodController flood_;
  support::Rng rng_;

  std::vector<PeerState> peers_;
  Metrics metrics_;
  EngineContext ctx_;

  std::unique_ptr<RetrievalScheme> retrieval_;
  std::unique_ptr<ConsistencyScheme> consistency_;
  std::unique_ptr<CustodyManager> custody_;
  std::unique_ptr<WorkloadDriver> workload_;
  std::unique_ptr<check::InvariantChecker> checker_;
  net::PacketDispatcher dispatch_;

  double measure_start_ = 0.0;
  double energy_at_start_ = 0.0;
  double energy_broadcast_at_start_ = 0.0;
  double energy_p2p_at_start_ = 0.0;
  std::uint64_t msgs_at_start_ = 0;
  std::uint64_t bytes_at_start_ = 0;
  std::uint64_t wire_sent_at_start_ = 0;
  std::uint64_t wire_received_at_start_ = 0;
  std::uint64_t consistency_msgs_at_start_ = 0;
  std::uint64_t frames_lost_at_start_ = 0;
  double energy_channel_at_start_ = 0.0;
  std::uint64_t channel_drops_at_start_ = 0;
  std::array<std::uint64_t, 4> channel_drops_by_cause_at_start_{};
  RoutingStats route_drops_at_start_;
};

}  // namespace precinct::core
