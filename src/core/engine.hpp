// PrecinctEngine — the protocol layer: every peer's PReCinCt state machine
// (data search, cooperative caching, consistency, custody management and
// fault handling) plus the two baseline retrieval schemes, driven by the
// discrete-event simulator through the wireless substrate.
//
// The engine owns all per-peer state.  Peers never share state except via
// packets; the engine is simply where all their handlers live (the whole
// simulation is single-threaded, see sim/simulator.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_store.hpp"
#include "consistency/ttr.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "geo/geo_hash.hpp"
#include "geo/region_table.hpp"
#include "net/wireless_net.hpp"
#include "routing/flood.hpp"
#include "routing/gpsr.hpp"
#include "routing/neighbor_provider.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "workload/data_catalog.hpp"
#include "workload/zipf.hpp"

namespace precinct::core {

class PrecinctEngine {
 public:
  PrecinctEngine(const PrecinctConfig& config, sim::Simulator& simulator,
                 net::WirelessNet& network, geo::RegionTable region_table,
                 workload::DataCatalog& catalog);

  PrecinctEngine(const PrecinctEngine&) = delete;
  PrecinctEngine& operator=(const PrecinctEngine&) = delete;

  /// Place initial custody/replica copies and schedule workload generators,
  /// region checks and failure injection.  Call once before running.
  void initialize();

  /// Snapshot counters; everything before this is warm-up.
  void start_measurement();

  /// Compute the metrics for the measurement window.
  [[nodiscard]] Metrics finalize();

  // -- direct drivers (used by tests and examples) ---------------------------

  /// Issue one data request at `peer` for `key` right now.
  void issue_request(net::NodeId peer, geo::Key key);

  /// Issue an uncounted background fetch (prefetching): traffic and
  /// energy are charged but request metrics are not touched.
  void issue_prefetch(net::NodeId peer, geo::Key key);

  /// Initiate one update at `peer` for `key` right now.
  void issue_update(net::NodeId peer, geo::Key key);

  // -- introspection -----------------------------------------------------------

  [[nodiscard]] const cache::CacheStore& cache_of(net::NodeId peer) const {
    return peers_.at(peer).cache;
  }
  [[nodiscard]] geo::RegionId region_of(net::NodeId peer) const {
    return peers_.at(peer).region;
  }
  [[nodiscard]] const geo::RegionTable& region_table() const noexcept {
    return regions_;
  }
  [[nodiscard]] const geo::GeoHash& geo_hash() const noexcept { return hash_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t pending_requests() const noexcept {
    return pending_.size();
  }
  /// Custodian (static-space holder) count for a key across live peers.
  [[nodiscard]] std::size_t custody_count(geo::Key key) const;

  /// Crash a peer mid-run; `graceful` hands custody off first (§2.4).
  void fail_peer(net::NodeId peer, bool graceful);

  /// Bring a crashed peer back with fresh state (empty caches, no
  /// custody); it resumes issuing requests and beaconing.
  void revive_peer(net::NodeId peer);

  /// Attach an event tracer (nullptr detaches).  Not owned.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  // -- region management (§2.1) ----------------------------------------------

  /// Merge regions `a` and `b`: updates the table, floods the new table
  /// through the network at `initiator`'s cost, and relocates custody of
  /// every key whose home/replica set changed.  Returns the new region's
  /// id, or nullopt if either id is unknown.
  std::optional<geo::RegionId> merge_regions(geo::RegionId a, geo::RegionId b,
                                             net::NodeId initiator);

  /// Separate a region into two halves (same dissemination/relocation
  /// protocol as merge_regions).
  std::optional<std::pair<geo::RegionId, geo::RegionId>> separate_region(
      geo::RegionId id, net::NodeId initiator);

  /// Peer count per region id (live peers only).
  [[nodiscard]] std::size_t region_population(geo::RegionId region) const;

 private:
  // -- per-peer state ----------------------------------------------------------
  struct Peer {
    cache::CacheStore cache;
    geo::RegionId region = geo::kInvalidRegion;
    support::Rng rng;
    /// Bumped on revival; scheduled per-peer loops (requests, updates,
    /// beacons, region checks) die when their generation goes stale, so
    /// a crash/rejoin cycle cannot double the workload.
    std::uint32_t generation = 0;

    Peer(std::size_t capacity_bytes,
         std::unique_ptr<cache::ReplacementPolicy> policy, support::Rng r)
        : cache(capacity_bytes, std::move(policy)), rng(r) {}
  };

  /// Latency charged to a request served from the peer's own cache: one
  /// protocol processing delay, no radio time.
  static constexpr double kLocalServeLatency = 1e-3;

  // -- requester-side request tracking ----------------------------------------
  enum class Phase : std::uint8_t {
    kRegional,  ///< waiting on the local-region flood
    kHome,      ///< waiting on the home-region lookup
    kReplica,   ///< waiting on the replica-region fallback
    kValidate,  ///< have a cached/served copy, polling the home region
    kRing,      ///< expanding-ring baseline: waiting on the current ring
    kFlood,     ///< flooding baseline: waiting on the network flood
  };
  struct Pending {
    geo::Key key = 0;
    net::NodeId requester = net::kNoNode;
    double created_at = 0.0;
    bool measured = false;
    bool prefetch = false;  ///< background fetch: no metrics, no cascading
    Phase phase = Phase::kRegional;
    int ring_index = 0;
    std::size_t lookup_index = 0;   ///< 0 = home, i > 0 = i-th replica
    bool probed_own_region = false; ///< regional probe already flooded it
    sim::EventHandle timeout;
    // Candidate copy awaiting validation (kValidate).
    bool has_candidate = false;
    bool candidate_own = false;  ///< candidate is the requester's own copy
    HitClass candidate_class = HitClass::kOwnCache;
    std::uint64_t candidate_version = 0;
    std::size_t candidate_bytes = 0;
    geo::RegionId candidate_region = geo::kInvalidRegion;
  };

  // -- receive dispatch ---------------------------------------------------------
  void on_receive(net::NodeId self, const net::Packet& packet);
  void handle_request(net::NodeId self, const net::Packet& packet);
  void handle_response(net::NodeId self, const net::Packet& packet);
  void handle_update_push(net::NodeId self, const net::Packet& packet);
  void handle_poll(net::NodeId self, const net::Packet& packet);
  void handle_poll_reply(net::NodeId self, const net::Packet& packet);
  void handle_invalidation(net::NodeId self, const net::Packet& packet);
  void handle_key_transfer(net::NodeId self, const net::Packet& packet);
  void handle_beacon(net::NodeId self, const net::Packet& packet);

  // -- requester-side flow --------------------------------------------------------
  void issue_request_internal(net::NodeId peer, geo::Key key, bool prefetch);
  /// Fire popularity-gradient prefetches after a remote fetch (extension).
  void maybe_prefetch(net::NodeId peer);
  void serve_from_own_cache(net::NodeId peer, std::uint64_t request_id,
                            const cache::CacheEntry& entry, bool is_custody);
  void start_regional_probe(std::uint64_t request_id);
  void start_remote_lookup(std::uint64_t request_id,
                           std::size_t lookup_index);
  void start_baseline_flood(std::uint64_t request_id);
  void start_validation(std::uint64_t request_id);
  /// Route a poll toward the key's home region.  Returns false when there
  /// is no home region to poll.
  bool send_poll(net::NodeId from, geo::Key key, std::uint64_t correlation_id,
                 std::uint64_t known_version);
  void complete_request(std::uint64_t request_id, HitClass hit_class,
                        std::uint64_t version, std::size_t item_bytes,
                        double ttr_remaining_s, geo::RegionId responder_region,
                        bool validated);
  void fail_request(std::uint64_t request_id);
  void on_timeout(std::uint64_t request_id, Phase phase);
  [[nodiscard]] bool scheme_needs_validation(double ttr_remaining_s) const;

  // -- responder-side helpers --------------------------------------------------------
  struct Copy {
    const cache::CacheEntry* entry = nullptr;
    bool is_custody = false;
  };
  /// A responder validating its own expired-TTR copy before serving: the
  /// original request is parked until the home region answers the poll.
  struct ResponderPoll {
    net::NodeId responder = net::kNoNode;
    net::Packet request;  ///< the request being served
    HitClass hit_class = HitClass::kRegionalCache;
    sim::EventHandle timeout;
  };
  [[nodiscard]] Copy find_copy(net::NodeId peer, geo::Key key) const;
  void send_response(net::NodeId self, const net::Packet& request,
                     const cache::CacheEntry& entry, HitClass hit_class);
  /// Serve `request` from a non-custody copy: if the consistency scheme
  /// requires it, poll the home region first (Fig 3 runs at the peer that
  /// holds the copy), then respond.
  void serve_from_copy(net::NodeId self, const net::Packet& request,
                       const cache::CacheEntry& entry, HitClass hit_class);
  void finish_responder_poll(std::uint64_t poll_id);
  /// Forward a pooled frame by position (GPSR + final-hop unicast + void
  /// recovery).  The ref must be uniquely held — per-hop fields are
  /// mutated in place before the frame is handed to the radio.
  void forward_geographic(net::NodeId self, net::PacketRef packet);
  /// Pool-wrap a received or stack-built packet and forward it.
  void forward_geographic(net::NodeId self, const net::Packet& packet) {
    forward_geographic(self, net_.make_ref(packet));
  }
  void flood_forward(net::NodeId self, const net::Packet& packet);

  // -- consistency ------------------------------------------------------------------
  /// An update push awaiting its custodian acknowledgement; re-sent on
  /// timeout (the paper assumes updates reliably reach the home region,
  /// which over lossy geographic routing requires an ack + retry).
  struct PendingPush {
    net::NodeId updater = net::kNoNode;
    geo::Key key = 0;
    geo::RegionId region = geo::kInvalidRegion;
    std::uint64_t version = 0;
    int retries_left = 0;
    sim::EventHandle timeout;
  };
  void push_update_to_region(net::NodeId peer, geo::Key key,
                             geo::RegionId region, std::uint64_t version);
  void send_push_packet(std::uint64_t push_id);
  void handle_push_ack(net::NodeId self, const net::Packet& packet);
  /// Returns true when `self` held custody and applied the update.
  bool apply_custodian_update(net::NodeId self, const net::Packet& packet);
  void maybe_ack_push(net::NodeId self, const net::Packet& packet);
  [[nodiscard]] double custodian_ttr_s(geo::Key key);

  // -- custody & mobility ----------------------------------------------------------
  void place_initial_copies();
  void check_region(net::NodeId peer);
  void handoff_custody(net::NodeId peer, geo::RegionId old_region);
  [[nodiscard]] net::NodeId pick_custody_target(net::NodeId mover,
                                                geo::RegionId region);

  // -- region management internals ----------------------------------------------------
  /// Flood the updated region table from `initiator` and refresh every
  /// peer's region id; then relocate custody displaced by the change.
  void commit_region_change(net::NodeId initiator);
  void relocate_displaced_custody();
  void maybe_rebalance_regions();

  // -- workload drivers --------------------------------------------------------------
  /// Zipf-sample a key, applying the hotspot rotation if configured.
  [[nodiscard]] geo::Key sample_key(net::NodeId peer);
  void schedule_next_request(net::NodeId peer);
  void schedule_next_update(net::NodeId peer);
  void schedule_region_checks();
  void schedule_crashes();
  void schedule_joins();
  void schedule_beacon(net::NodeId peer);

  void take_timeline_sample();

  // -- misc helpers -------------------------------------------------------------------
  /// The owner's current version of `key`: the home-region custodian's
  /// copy (falling back to the replica's).  This is the reference for
  /// false-hit accounting — the paper's consistency target is the owner,
  /// not an omniscient oracle.  nullopt when no custodian is alive.
  [[nodiscard]] std::optional<std::uint64_t> authoritative_version(
      geo::Key key) const;
  [[nodiscard]] double region_distance(geo::RegionId a, geo::RegionId b) const;
  [[nodiscard]] net::Packet make_packet(net::PacketKind kind,
                                        net::NodeId origin, geo::Key key);
  [[nodiscard]] bool in_region(net::NodeId node, geo::RegionId region);
  [[nodiscard]] bool measuring() const noexcept { return measuring_; }

  PrecinctConfig config_;
  sim::Simulator& sim_;
  net::WirelessNet& net_;
  geo::RegionTable regions_;
  geo::GeoHash hash_;
  workload::DataCatalog& catalog_;
  workload::ZipfGenerator zipf_;
  std::unique_ptr<routing::BeaconNeighborProvider> beacons_;
  std::unique_ptr<routing::Gpsr> gpsr_;
  routing::FloodController flood_;
  support::Rng rng_;

  std::vector<Peer> peers_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, ResponderPoll> responder_polls_;
  std::unordered_map<std::uint64_t, PendingPush> pending_pushes_;
  std::unordered_map<geo::Key, consistency::TtrEstimator> ttr_;
  std::uint64_t next_request_id_ = 1;

  Metrics metrics_;
  sim::Tracer* tracer_ = nullptr;
  bool measuring_ = false;
  double measure_start_ = 0.0;
  double energy_at_start_ = 0.0;
  double energy_broadcast_at_start_ = 0.0;
  double energy_p2p_at_start_ = 0.0;
  std::uint64_t msgs_at_start_ = 0;
  std::uint64_t bytes_at_start_ = 0;
  std::uint64_t consistency_msgs_at_start_ = 0;
  std::uint64_t frames_lost_at_start_ = 0;
  double region_diameter_ = 1.0;  // normalizes reg_dst in the utility

 public:
  // Routing diagnostics (read by tests and benches).
  [[nodiscard]] std::uint64_t route_drops_void() const noexcept {
    return route_drops_void_;
  }
  [[nodiscard]] std::uint64_t route_drops_ttl() const noexcept {
    return route_drops_ttl_;
  }

 private:
  std::uint64_t route_drops_void_ = 0;
  std::uint64_t route_drops_ttl_ = 0;
};

}  // namespace precinct::core
