#include "core/retrieval_precinct.hpp"

#include <cmath>
#include <string>

namespace precinct::core {

void PrecinctLookup::start_search(std::uint64_t request_id) {
  // With no dynamic cache there is no cumulative cache to probe (the
  // paper's §5.2.2 analysis assumes exactly this); go straight to the
  // home region.  Keys homed in the requester's own region are still
  // found: the remote lookup floods locally when already inside.
  const net::NodeId peer = pending_.at(request_id).requester;
  if (ctx_.peers[peer].cache.capacity_bytes() == 0) {
    start_remote_lookup(request_id, 0);
  } else {
    start_regional_probe(request_id);
  }
}

void PrecinctLookup::restart_search(std::uint64_t request_id) {
  start_regional_probe(request_id);
}

void PrecinctLookup::on_phase_timeout(std::uint64_t request_id, Phase phase) {
  switch (phase) {
    case Phase::kRegional:
      // Home lookup next; start_remote_lookup itself skips regions the
      // probe already flooded.
      start_remote_lookup(request_id, 0);
      break;
    case Phase::kHome:
    case Phase::kReplica: {
      // Lossy-channel hardening: retransmit the same lookup (with backoff)
      // up to the retry budget before escalating.  With the default budget
      // of 0 this is the paper's fire-and-escalate behavior.
      Pending& pending = pending_.at(request_id);
      if (pending.attempts < ctx_.config.request_retries) {
        ++pending.attempts;
        if (pending.measured) ++ctx_.metrics.retransmissions;
        PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(),
                       sim::TraceCategory::kProtocol, pending.requester,
                       "request #" + std::to_string(request_id) +
                           " retransmit " + std::to_string(pending.attempts) +
                           " (lookup " +
                           std::to_string(pending.lookup_index) + ")");
        send_remote_lookup(request_id);
        break;
      }
      // §2.4 fallback chain: try the next replica region (fails when
      // exhausted).
      start_remote_lookup(request_id, pending.lookup_index + 1);
      break;
    }
    default:
      break;  // kValidate handled by the base; kRing/kFlood never occur
  }
}

void PrecinctLookup::handle_request(net::NodeId self,
                                    const net::Packet& packet) {
  switch (packet.mode) {
    case net::RouteMode::kRegionFlood:
      handle_request_region_flood(self, packet);
      return;
    case net::RouteMode::kGeographic:
      handle_request_geographic(self, packet);
      return;
    case net::RouteMode::kNetworkFlood:
      return;  // PReCinCt never floods requests network-wide
  }
}

void PrecinctLookup::start_regional_probe(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  pending.phase = Phase::kRegional;
  pending.probed_own_region = true;
  const net::NodeId peer = pending.requester;

  net::Packet packet =
      ctx_.make_packet(net::PacketKind::kRequest, peer, pending.key);
  packet.mode = net::RouteMode::kRegionFlood;
  packet.dest_region = ctx_.peers[peer].region;
  packet.ttl = ctx_.config.region_flood_ttl;
  packet.request_id = request_id;
  ctx_.flood.mark_seen(peer, packet.id);
  ctx_.net.broadcast(packet);

  pending.timeout =
      ctx_.sim.schedule(ctx_.config.regional_timeout_s, [this, request_id] {
        on_timeout(request_id, Phase::kRegional);
      });
}

void PrecinctLookup::start_remote_lookup(std::uint64_t request_id,
                                         std::size_t lookup_index) {
  Pending& pending = pending_.at(request_id);
  const net::NodeId peer = pending.requester;
  const auto targets = ctx_.hash.key_regions(pending.key, ctx_.regions,
                                             ctx_.config.replica_count);
  // Skip regions the regional probe already flooded (the requester's own
  // region) and any that vanished from the table.
  while (lookup_index < targets.size() &&
         ((pending.probed_own_region &&
           targets[lookup_index] == ctx_.peers[peer].region) ||
          ctx_.regions.find(targets[lookup_index]) == nullptr)) {
    ++lookup_index;
  }
  if (lookup_index >= targets.size()) {
    fail_request(request_id);
    return;
  }
  pending.lookup_index = lookup_index;
  pending.phase = lookup_index == 0 ? Phase::kHome : Phase::kReplica;
  pending.attempts = 0;
  send_remote_lookup(request_id);
}

void PrecinctLookup::send_remote_lookup(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  const net::NodeId peer = pending.requester;
  const auto targets = ctx_.hash.key_regions(pending.key, ctx_.regions,
                                             ctx_.config.replica_count);
  const geo::RegionId target = targets[pending.lookup_index];
  const geo::Region* region = ctx_.regions.find(target);
  if (region == nullptr) {
    // The region vanished between retries (dynamic reconfiguration);
    // escalate instead of routing at nothing.
    start_remote_lookup(request_id, pending.lookup_index + 1);
    return;
  }

  net::Packet packet =
      ctx_.make_packet(net::PacketKind::kRequest, peer, pending.key);
  packet.dest_region = target;
  packet.dest_location = region->center;
  packet.request_id = request_id;
  if (ctx_.peers[peer].region == target) {
    // Already inside the target region: the requester itself is the
    // broadcast point for the localized flood (§2.2).
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = ctx_.config.region_flood_ttl;
    ctx_.flood.mark_seen(peer, packet.id);
    ctx_.net.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = ctx_.config.max_route_hops;
    ctx_.forward_geographic(peer, packet);
  }

  const Phase phase = pending.phase;
  // Attempt k waits 2^k * remote_timeout_s; at k == 0 that is exactly
  // remote_timeout_s, so a zero retry budget reproduces the original
  // timing bit-for-bit.
  const double wait =
      ctx_.config.remote_timeout_s * std::exp2(pending.attempts);
  pending.timeout = ctx_.sim.schedule(wait, [this, request_id, phase] {
    on_timeout(request_id, phase);
  });
}

}  // namespace precinct::core
