#include "core/sharded_scenario.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "net/packet.hpp"

namespace precinct::core {

namespace {

/// Tile seeds and gateway-stream seeds live in their own salt spaces so
/// no tile's component streams can collide with another tile's or with a
/// gateway stream (same discipline as Scenario's 0xCA7A/0x0b17/0x2ad0).
constexpr std::uint64_t kTileSalt = 0x715e;
constexpr std::uint64_t kGatewaySalt = 0x6a7e;

PrecinctConfig tile_config(const PrecinctConfig& world, std::uint32_t tile) {
  PrecinctConfig c = world;
  // Each tile is a plain single-area scenario: the sharding knobs belong
  // to the world, not the tile.
  c.tiles_x = c.tiles_y = 1;
  c.shards = 1;
  c.gateway_interval_s = 0.0;
  c.seed = support::hash_combine(support::hash_combine(world.seed, kTileSalt),
                                 tile);
  return c;
}

}  // namespace

ShardedScenario::ShardedScenario(const PrecinctConfig& config)
    : config_((config.validate(), config)),
      partition_(geo::partition_grid(config.tiles_x, config.tiles_y,
                                     config.shards)) {
  const std::uint32_t nx = config_.tiles_x;
  const std::uint32_t ny = config_.tiles_y;
  const std::size_t n_tiles = static_cast<std::size_t>(nx) * ny;
  tiles_.reserve(n_tiles);
  for (std::uint32_t t = 0; t < n_tiles; ++t) {
    tiles_.push_back(std::make_unique<Scenario>(tile_config(config_, t)));
  }
  std::vector<sim::Simulator*> domains;
  domains.reserve(n_tiles);
  for (const auto& tile : tiles_) domains.push_back(&tile->simulator());
  sim::ShardExecutor::Options opts;
  opts.n_shards = partition_.n_shards;
  opts.lookahead_s = config_.gateway_latency_s;
  exec_ = std::make_unique<sim::ShardExecutor>(std::move(domains),
                                               partition_.shard_of, opts);
  counters_.resize(n_tiles);
  if (config_.gateway_interval_s > 0.0) {
    // One directed stream per 4-adjacent ordered tile pair, in a fixed
    // (tile, east/south/west/north) enumeration so stream indices — and
    // therefore seeds — are pure functions of the grid.
    for (std::uint32_t y = 0; y < ny; ++y) {
      for (std::uint32_t x = 0; x < nx; ++x) {
        const std::uint32_t t = y * nx + x;
        const auto add = [&](std::uint32_t n) {
          GatewayStream s{t, n,
                          support::Rng(support::hash_combine(
                              support::hash_combine(config_.seed, kGatewaySalt),
                              streams_.size()))};
          streams_.push_back(std::move(s));
        };
        if (x + 1 < nx) add(t + 1);
        if (y + 1 < ny) add(t + nx);
        if (x > 0) add(t - 1);
        if (y > 0) add(t - nx);
      }
    }
  }
}

void ShardedScenario::schedule_next_arrival(std::size_t stream_index) {
  GatewayStream& s = streams_[stream_index];
  const double dt = s.rng.exponential(config_.gateway_interval_s);
  tiles_[s.src]->simulator().schedule(
      dt, [this, stream_index] { fire_gateway(stream_index); });
}

void ShardedScenario::fire_gateway(std::size_t stream_index) {
  GatewayStream& s = streams_[stream_index];
  Scenario& src_tile = *tiles_[s.src];
  // Draw everything from the stream's RNG up front so the draw sequence —
  // and thus every downstream event — is fixed regardless of liveness.
  const auto requester =
      static_cast<net::NodeId>(s.rng.uniform_int(config_.n_nodes));
  const auto server =
      static_cast<net::NodeId>(s.rng.uniform_int(config_.n_nodes));
  const std::size_t rank = static_cast<std::size_t>(
      s.rng.uniform_int(config_.catalog.n_items));
  schedule_next_arrival(stream_index);

  // Uplink at the source tile; a dead requester simply misses its slot.
  if (!src_tile.network().count_gateway_egress(requester, net::PacketKind::kRequest,
                                               net::kHeaderBytes)) {
    return;
  }
  ++counters_[s.src].sent;
  const double issue_time = src_tile.simulator().now();
  const std::uint32_t src = s.src;
  const std::uint32_t dst = s.dst;
  exec_->post(
      src, dst, issue_time + config_.gateway_latency_s,
      [this, src, dst, requester, server, rank, issue_time] {
        Scenario& d = *tiles_[dst];
        if (!d.network().count_gateway_ingress(server, net::PacketKind::kRequest,
                                               net::kHeaderBytes)) {
          return;
        }
        ++counters_[dst].served;
        // The destination peer performs a real regional retrieval on the
        // requester's behalf — full radio/engine cost inside its tile.
        d.engine().issue_request(server, d.catalog().key_of(rank));
        // Ack travels back over the backhaul and closes the RTT.
        if (!d.network().count_gateway_egress(server, net::PacketKind::kResponse,
                                              net::kHeaderBytes)) {
          return;
        }
        exec_->post(dst, src,
                    d.simulator().now() + config_.gateway_latency_s,
                    [this, src, requester, issue_time] {
                      Scenario& o = *tiles_[src];
                      if (!o.network().count_gateway_ingress(
                              requester, net::PacketKind::kResponse,
                              net::kHeaderBytes)) {
                        return;
                      }
                      ++counters_[src].acks;
                      counters_[src].rtt_sum_s +=
                          o.simulator().now() - issue_time;
                    });
      });
}

ShardedMetrics ShardedScenario::run() {
  if (ran_) throw std::logic_error("ShardedScenario::run: already ran");
  ran_ = true;
  for (const auto& tile : tiles_) tile->engine().initialize();
  for (std::size_t i = 0; i < streams_.size(); ++i) schedule_next_arrival(i);
  // Warm-up and measurement as separate executor runs: the phase boundary
  // is an exact window boundary for every shard count, so flipping the
  // measurement switch between them is K-invariant.
  exec_->run_until(config_.warmup_s);
  for (const auto& tile : tiles_) tile->engine().start_measurement();
  exec_->run_until(config_.end_time_s());

  ShardedMetrics out;
  out.tiles = static_cast<std::uint32_t>(tiles_.size());
  out.shards = partition_.n_shards;
  out.per_tile.reserve(tiles_.size());
  for (const auto& tile : tiles_) {
    out.per_tile.push_back(tile->engine().finalize());
  }
  out.aggregate = merge_metrics(out.per_tile);
  for (const TileGatewayCounters& c : counters_) {
    out.gateway_requests += c.sent;
    out.gateway_served += c.served;
    out.gateway_acks += c.acks;
    out.gateway_rtt_sum_s += c.rtt_sum_s;
  }
  out.windows = exec_->windows();
  out.messages_merged = exec_->messages_merged();
  out.partition_cut_edges =
      geo::cut_edges(config_.tiles_x, config_.tiles_y, partition_.shard_of);
  return out;
}

std::string sharded_fingerprint(const ShardedMetrics& m) {
  std::string out;
  char line[96];
  const auto put = [&](const char* key, const char* fmt, auto value) {
    out += key;
    std::snprintf(line, sizeof(line), fmt, value);
    out += line;
    out += '\n';
  };
  // Deliberately excludes m.shards and m.partition_cut_edges: they encode
  // *how* the work was split, and the whole point of this string is that
  // nothing else may depend on that.
  put("tiles=", "%" PRIu32, m.tiles);
  put("gateway_requests=", "%" PRIu64, m.gateway_requests);
  put("gateway_served=", "%" PRIu64, m.gateway_served);
  put("gateway_acks=", "%" PRIu64, m.gateway_acks);
  put("gateway_rtt_sum=", "%a", m.gateway_rtt_sum_s);
  put("windows=", "%" PRIu64, m.windows);
  put("messages_merged=", "%" PRIu64, m.messages_merged);
  out += "--- aggregate ---\n";
  out += fingerprint(m.aggregate);
  for (std::size_t t = 0; t < m.per_tile.size(); ++t) {
    out += "--- tile ";
    std::snprintf(line, sizeof(line), "%zu", t);
    out += line;
    out += " ---\n";
    out += fingerprint(m.per_tile[t]);
  }
  return out;
}

ShardedMetrics run_sharded_scenario(const PrecinctConfig& config) {
  ShardedScenario scenario(config);
  return scenario.run();
}

}  // namespace precinct::core
