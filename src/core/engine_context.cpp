#include "core/engine_context.hpp"

#include <cmath>

namespace precinct::core {

EngineContext::Copy EngineContext::find_copy(net::NodeId peer,
                                             geo::Key key) const {
  const PeerState& p = peers[peer];
  if (const cache::CacheEntry* custody = p.cache.find_static(key)) {
    return {custody, true};
  }
  if (const cache::CacheEntry* cached = p.cache.find(key)) {
    return {cached, false};
  }
  return {};
}

std::optional<std::uint64_t> EngineContext::authoritative_version(
    geo::Key key) const {
  const geo::RegionId home = hash.home_region(key, regions);
  const geo::RegionId replica = hash.replica_region(key, regions);
  std::optional<std::uint64_t> from_replica;
  for (net::NodeId i = 0; i < net.node_count(); ++i) {
    if (!net.is_alive(i)) continue;
    const cache::CacheEntry* custody = peers[i].cache.find_static(key);
    if (custody == nullptr) continue;
    if (peers[i].region == home) return custody->version;
    if (peers[i].region == replica) from_replica = custody->version;
  }
  return from_replica;
}

double EngineContext::region_distance(geo::RegionId a, geo::RegionId b) const {
  const geo::Region* ra = regions.find(a);
  const geo::Region* rb = regions.find(b);
  if (ra == nullptr || rb == nullptr) return 0.0;
  return geo::distance(ra->center, rb->center);
}

net::Packet EngineContext::make_packet(net::PacketKind kind, net::NodeId origin,
                                       geo::Key key) {
  net::Packet packet;
  packet.id = net.next_packet_id();
  packet.kind = kind;
  packet.origin = origin;
  packet.src = origin;
  packet.origin_location = net.position(origin);
  packet.key = key;
  packet.size_bytes = net::kHeaderBytes;
  packet.created_at = sim.now();
  return packet;
}

bool EngineContext::in_region(net::NodeId node, geo::RegionId region) const {
  const geo::Region* r = regions.find(region);
  return r != nullptr && r->extent.contains(net.position(node));
}

void EngineContext::refresh_region_diameter() {
  if (!regions.empty()) {
    const geo::Rect& extent = regions.regions().front().extent;
    region_diameter = std::hypot(extent.width(), extent.height());
  }
}

void EngineContext::forward_geographic(net::NodeId self, net::PacketRef ref) {
  net::Packet& packet = *ref;  // sole reference until the radio shares it
  if (packet.ttl <= 0) {
    ++route_drops.drops_ttl;
    return;
  }
  packet.ttl -= 1;
  packet.hops += 1;
  // Final-hop delivery: when the addressee is in radio range, skip
  // position-based forwarding (it may have drifted from dest_location).
  if (packet.dest_node != net::kNoNode && packet.dest_node != self &&
      net.in_range(self, packet.dest_node)) {
    packet.src = self;
    const net::NodeId dest = packet.dest_node;
    net.unicast(std::move(ref), dest);
    return;
  }
  // next_hop must see src = previous hop: the perimeter right-hand rule
  // sweeps from the arrival edge.  Stamp src only after the decision.
  const auto next = gpsr.next_hop(self, packet);
  packet.src = self;
  if (!next.has_value()) {
    ++route_drops.drops_void;
    // Dead end even in perimeter mode.  Recover with a one-shot scoped
    // broadcast (paper assumption iii: messages eventually reach the
    // correct node); receivers gate themselves in the receive prelude.
    if (flood.mark_seen(self, packet.id)) {
      packet.recovery = true;
      packet.perimeter = false;
      packet.perimeter_entry_node = net::kNoNode;
      packet.perimeter_first_hop = net::kNoNode;
      net.broadcast(std::move(ref));
    }
    return;
  }
  net.unicast(std::move(ref), *next);
}

void EngineContext::flood_forward(net::NodeId self, const net::Packet& packet) {
  if (!routing::FloodController::ttl_allows_forward(packet)) return;
  net::PacketRef fwd = net.make_ref(packet);
  fwd->ttl -= 1;
  fwd->hops += 1;
  fwd->src = self;
  net.broadcast(std::move(fwd));
}

}  // namespace precinct::core
