// Scenario configuration: one struct drives the whole stack, mirroring the
// paper's §6.1 simulation environment.  Field defaults are the paper's
// defaults wherever it states them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/policies.hpp"
#include "consistency/modes.hpp"
#include "energy/feeney_model.hpp"
#include "geo/geometry.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/wireless_net.hpp"
#include "routing/expanding_ring.hpp"
#include "workload/data_catalog.hpp"

namespace precinct::core {

/// Which data retrieval scheme the network runs (§6.2 compares PReCinCt
/// against the two unstructured-P2P baselines).
enum class RetrievalKind : std::uint8_t {
  kPrecinct,       ///< region hash + GPSR + localized flood
  kFlooding,       ///< network-wide flood per request
  kExpandingRing,  ///< TTL-doubling ring search
};

[[nodiscard]] const char* to_string(RetrievalKind scheme) noexcept;

/// One heterogeneous-fleet node class (config keys
/// `class.<name>.count/cache_kb/speed/fixed`).  Classes occupy contiguous
/// node-id ranges in name order; attributes left at their zero defaults
/// inherit the scenario-wide knobs, so a single class with no overrides is
/// byte-identical to the homogeneous fleet of the same size.
struct NodeClassConfig {
  std::string name;
  std::size_t count = 0;
  /// Per-peer cache capacity in KiB; 0 inherits `cache_fraction` sizing.
  double cache_kb = 0.0;
  /// Class speed cap (its v_max, paired with min(v_min, speed) as the
  /// floor); 0 inherits the scenario v_min/v_max.
  double speed = 0.0;
  /// Fixed roadside unit: statically placed, never moves or migrates.
  bool fixed = false;
};

struct PrecinctConfig {
  // Special members are defaulted out-of-line (config_io.cpp) so
  // construction/destruction of config temporaries stays opaque to
  // caller TUs — GCC 12's -Wmaybe-uninitialized otherwise reports false
  // positives on the inlined string-member destructors of by-value
  // returns under -O2 -Werror.
  PrecinctConfig();
  PrecinctConfig(const PrecinctConfig&);
  PrecinctConfig(PrecinctConfig&&) noexcept;
  PrecinctConfig& operator=(const PrecinctConfig&);
  PrecinctConfig& operator=(PrecinctConfig&&) noexcept;
  ~PrecinctConfig();

  // -- topology & regions (paper: 1200x1200 m, 9 equal regions) ------------
  geo::Rect area{{0.0, 0.0}, {1200.0, 1200.0}};
  std::uint32_t regions_x = 3;
  std::uint32_t regions_y = 3;
  std::size_t n_nodes = 80;
  /// Heterogeneous fleet: node classes in contiguous id ranges, sorted by
  /// name.  Empty (the default) is the classic homogeneous fleet; when
  /// non-empty, the class counts must sum to n_nodes.
  std::vector<NodeClassConfig> node_classes;

  // -- radio & energy --------------------------------------------------------
  net::WirelessConfig wireless;  // 250 m range, 11 Mbps defaults
  energy::FeeneyModel energy_model;

  // -- mobility (paper: random waypoint, 5 s pause) -------------------------
  /// "random-waypoint" (paper default), "random-direction", "gauss-markov",
  /// "manhattan" (vehicular street grid), "commuter" (day/night attractor
  /// churn) or "static".  `mobile == false` forces "static".
  std::string mobility_model = "random-waypoint";
  bool mobile = true;
  double v_min = 0.5;
  double v_max = 6.0;
  double pause_s = 5.0;
  /// Manhattan grid: distance between parallel streets and the turn
  /// probability at each intersection.
  double street_spacing_m = 100.0;
  double turn_probability = 0.25;
  /// Commuter flow: full day/night cycle length and attractor hub count.
  double commuter_period_s = 400.0;
  std::size_t commuter_hubs = 3;
  /// How often peers check whether they crossed a region boundary (§2.3).
  double region_check_interval_s = 1.0;

  // -- workload (paper: Poisson mean 30 s, Zipf theta) ----------------------
  workload::DataCatalogConfig catalog;
  double zipf_theta = 0.8;
  /// Flash-crowd dynamics: every interval the popularity ranking rotates
  /// by `hotspot_shift` items, so yesterday's hot content cools off.  0
  /// disables rotation (the paper's stationary workload).
  double hotspot_rotation_interval_s = 0.0;
  std::size_t hotspot_shift = 100;
  double mean_request_interval_s = 30.0;
  double mean_update_interval_s = 30.0;
  bool updates_enabled = false;
  /// Flash-crowd load scaling: divides the mean request interval, so 100
  /// drives 100x the paper's request rate.  1 (the default) is a bit-exact
  /// no-op on the request schedule.
  double request_rate_multiplier = 1.0;
  /// Zipf skew drift: theta moves by this much per second (clamped to
  /// [0, 4]), re-skewing popularity during the run.  0 disables drift.
  double zipf_drift_per_s = 0.0;
  /// How often the drifting theta is re-applied to the generator.
  double zipf_drift_step_s = 10.0;

  // -- caching (§3) ----------------------------------------------------------
  /// Dynamic cache capacity as a fraction of total database bytes
  /// (Fig 4/5 sweep 0.005..0.025).  0 disables dynamic caching.
  double cache_fraction = 0.02;
  std::string cache_policy = "gd-ld";
  cache::GdLdWeights gdld_weights;
  /// Popularity-gradient prefetching (extension, after the authors'
  /// companion work on caching + prefetching): when a remote fetch
  /// completes, also request up to this many of the globally hottest
  /// items the peer does not yet hold.  Prefetch latency is not counted
  /// against the request metrics; the extra traffic and energy are.
  std::size_t prefetch_count = 0;

  // -- consistency (§4) -------------------------------------------------------
  consistency::Mode consistency = consistency::Mode::kNone;
  /// Consistency scheme by registry name; overrides `consistency` when
  /// non-empty.  Lets externally registered schemes (SchemeRegistry) be
  /// selected from configs without extending the enum.
  std::string consistency_scheme;
  double ttr_alpha = 0.5;       ///< Eq. 2's alpha
  double ttr_initial_s = 30.0;  ///< TTR seed before any update is seen
  /// Retransmissions of an unacknowledged update push (0 = fire and
  /// forget).  The paper assumes updates reach the home region reliably.
  int push_retries = 2;

  // -- neighbor discovery ------------------------------------------------------
  /// When true, GPSR forwards from beacon-fed neighbor tables (Karp &
  /// Kung's real mechanism: periodic position broadcasts, entries expire
  /// after neighbor_lifetime_s) instead of oracle knowledge.  Beacon
  /// traffic is charged like any other message.
  bool use_beacons = false;
  double beacon_interval_s = 1.0;
  double neighbor_lifetime_s = 3.0;
  /// GPSR's piggybacking: every received or overheard frame refreshes
  /// the sender's table entry, and a node whose own traffic substitutes
  /// for a beacon suppresses it.
  bool beacon_piggyback = true;

  // -- retrieval ---------------------------------------------------------------
  RetrievalKind retrieval = RetrievalKind::kPrecinct;
  /// Retrieval scheme by registry name; overrides `retrieval` when
  /// non-empty (same extension hook as consistency_scheme).
  std::string retrieval_scheme;
  routing::ExpandingRingConfig ring;
  int region_flood_ttl = 8;       ///< TTL for localized floods
  int network_flood_ttl = 32;     ///< TTL for the flooding baseline
  int max_route_hops = 64;        ///< GPSR hop budget
  double regional_timeout_s = 0.08;  ///< wait for a same-region answer
                                     ///< (regional flood RTT is ~10 ms)
  double remote_timeout_s = 1.0;     ///< wait for home/replica answer
                                     ///< (cross-area RTT is ~40 ms)
  /// Replica regions per key (§2.4; the paper's default is one, and notes
  /// the scheme "can be easily extended to multiple replicas").  0
  /// disables replication; lookups fall back through replicas in
  /// proximity order.
  std::size_t replica_count = 1;
  /// Retransmissions of an unanswered remote lookup before escalating to
  /// the next replica region (exponential backoff: the k-th retry waits
  /// 2^k * remote_timeout_s).  0 = the paper's fire-and-escalate behavior;
  /// raise it when running a lossy channel model.
  int request_retries = 0;

  // -- dynamic region management (§2.1; paper future work) -------------------
  /// Periodically merge under-populated regions into their nearest
  /// neighbor and separate over-populated ones.  Each operation updates
  /// the region table, floods the change to all peers (kRegionUpdate) and
  /// relocates custody of every re-homed key — all at modeled cost.
  bool dynamic_regions = false;
  double region_reconfig_interval_s = 60.0;
  std::size_t min_region_peers = 2;   ///< below this, merge
  std::size_t max_region_peers = 24;  ///< above this, separate

  // -- failure injection (§2.4) ----------------------------------------------
  /// Expected crashes per second across the network (0 = none).  Crashed
  /// nodes stay down (`sudden death`).
  double crash_rate_per_s = 0.0;
  /// Fraction of departures that are graceful (custody handed off first).
  double graceful_fraction = 1.0;
  /// Expected rejoins per second across the network: crashed peers come
  /// back (fresh state — empty caches, no custody) at this rate.  With
  /// both rates set the network reaches a churn steady state.
  double join_rate_per_s = 0.0;

  // -- sharded parallel execution (DESIGN.md §11, §13) -----------------------
  /// Worker shards for the conservative parallel executor.  1 (the
  /// default) runs the classic single-threaded path.  With a tile grid
  /// (tiles > 1x1), K > 1 splits the tiles across K threads; with the
  /// default 1x1 grid, K > 1 selects *world sharding* — ONE world cut
  /// into region-column domains with real radio frames crossing the cut
  /// (WorldShardedScenario), whose lookahead is derived from the radio
  /// MAC/propagation timing.  Results are byte-identical for any value —
  /// shards only decide which thread does the work.
  std::uint32_t shards = 1;
  /// Tile grid for ShardedScenario: the world is tiles_x * tiles_y
  /// independent PReCinCt areas (each a full stack with this config's
  /// per-tile parameters), coupled by gateway traffic.  1x1 means the
  /// plain single-area scenario (or, with shards > 1, world sharding).
  std::uint32_t tiles_x = 1;
  std::uint32_t tiles_y = 1;
  /// Inter-tile gateway delivery latency; the tiled executor's
  /// conservative lookahead window, so a tiled world requires > 0.  Must
  /// stay 0 (the default) in a world-sharded run, whose lookahead is
  /// derived, not configured.
  double gateway_latency_s = 0.0;
  /// Mean interval between gateway requests per (tile, neighbor) pair
  /// (Poisson).  0 disables gateway traffic.
  double gateway_interval_s = 0.0;

  // -- scripted workload + real transport (DESIGN.md §14) --------------------
  /// Path to a deterministic workload script (`<t> request|update <node>
  /// <rank>` lines, see workload/workload_script.hpp) layered on top of
  /// the Poisson generators.  "" (default) disables.  Owner-gated, so the
  /// same file drives an in-sim run and a UDP fleet identically.
  std::string workload_script;
  /// First UDP port of a local fleet: domain d binds base_port + d
  /// (precinct_ctl's default address plan; explicit --peers overrides).
  std::uint32_t transport_base_port = 47400;
  /// Fleet pacing: "asap" advances windows as fast as barriers close
  /// (virtual-time lockstep — what the equivalence oracle compares
  /// against); "realtime" sleeps each window so sim time tracks wall
  /// time scaled by transport_speedup.
  std::string transport_pace = "asap";
  /// Sim seconds per wall second in realtime pace (ignored for asap).
  double transport_speedup = 1.0;
  /// Wall-clock interval between daemon status-file snapshots (0 = only
  /// the final snapshot).
  double transport_status_interval_s = 0.5;
  /// Wall-clock resend/NACK cadence for the window-barrier protocol.
  double transport_retry_s = 0.05;
  /// Wall-clock silence budget per barrier before a daemon aborts.
  double transport_timeout_s = 30.0;
  /// Post-run grace period serving resends to slower peers.
  double transport_linger_s = 5.0;

  // -- correctness harness (DESIGN.md §10) -----------------------------------
  /// Runtime invariant auditing: "" (off, default), "all", or a
  /// comma-separated subset of {net, cache, custody, pending,
  /// consistency, energy}.  The checker is observe-only — metrics are
  /// byte-identical with it on or off — and throws check::InvariantViolation
  /// on the first violated rule.
  std::string check;
  /// Audit every N executed events (>= 1).  1 = every event; larger
  /// strides amortize the audit cost on long runs.
  std::uint64_t check_stride = 64;

  // -- run control --------------------------------------------------------------
  /// When > 0, record a Metrics::Sample every interval during the
  /// measurement window (cumulative hit ratio, latency, energy).
  double sample_interval_s = 0.0;
  double warmup_s = 150.0;   ///< cache/TTR warm-up before measuring
  double measure_s = 900.0;  ///< measurement window length
  std::uint64_t seed = 1;

  /// Total simulated time.
  [[nodiscard]] double end_time_s() const noexcept {
    return warmup_s + measure_s;
  }
  /// Validate the configuration; throws std::invalid_argument with a
  /// specific message on the first problem found.  Scenario calls this,
  /// so malformed configs fail fast instead of producing silent nonsense.
  void validate() const;
  /// Dynamic cache capacity in bytes given a catalog size.
  [[nodiscard]] std::size_t cache_capacity_bytes(
      std::size_t db_bytes) const noexcept {
    return static_cast<std::size_t>(cache_fraction *
                                    static_cast<double>(db_bytes));
  }
  /// Index into node_classes owning `node` (classes occupy contiguous id
  /// ranges).  Requires a heterogeneous fleet and node < n_nodes.
  [[nodiscard]] std::size_t class_of(std::size_t node) const noexcept;
  /// True when any node class is a fixed roadside class.
  [[nodiscard]] bool has_fixed_nodes() const noexcept;
};

}  // namespace precinct::core
