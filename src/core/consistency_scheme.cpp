// ConsistencyScheme — shared machinery (paper §4): updates, the push
// phase with custodian acknowledgements, the adaptive pull (polls + TTR),
// Plain-Push invalidations.
#include "core/consistency_scheme.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/retrieval_scheme.hpp"

namespace precinct::core {

void ConsistencyScheme::register_handlers(net::PacketDispatcher& dispatch) {
  dispatch.set(net::PacketKind::kUpdatePush,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_update_push(self, packet);
               });
  dispatch.set(net::PacketKind::kPoll,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_poll(self, packet);
               });
  dispatch.set(net::PacketKind::kPollReply,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_poll_reply(self, packet);
               });
  dispatch.set(net::PacketKind::kInvalidation,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_invalidation(self, packet);
               });
  dispatch.set(net::PacketKind::kPushAck,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_push_ack(self, packet);
               });
}

void ConsistencyScheme::initiate_update(net::NodeId peer, geo::Key key) {
  const std::uint64_t version = ctx_.catalog.apply_update(key, ctx_.sim.now());
  // World sharding: every other domain's catalog replica merges the bump
  // at the next window boundary, before any frame carrying the new
  // version can cross the cut (no-op in a single-catalog run).
  ctx_.net.announce_catalog_update(key, version);
  if (ctx_.measuring) ++ctx_.metrics.updates_initiated;
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kConsistency,
                 peer,
                 "update key " + std::to_string(key) + " -> v" +
                     std::to_string(version));

  // The updater's own copies reflect the write immediately.  When the
  // updater is itself the custodian, the TTR estimator observes the
  // update here (no push will arrive over the air).
  PeerState& p = ctx_.peers[peer];
  if (cache::CacheEntry* custody = p.cache.find_static_mutable(key)) {
    custody->version = version;
    ttr_.try_emplace(key, ctx_.config.ttr_alpha, ctx_.config.ttr_initial_s)
        .first->second.on_update(ctx_.sim.now());
  }
  p.cache.refresh(key, version, ctx_.sim.now());

  propagate_update(peer, key, version);
}

void PlainPush::propagate_update(net::NodeId peer, geo::Key key,
                                 std::uint64_t version) {
  // Flood the update to the entire network (§1).  Carries the data so
  // custodians apply it; caches merely invalidate.
  net::Packet packet =
      ctx_.make_packet(net::PacketKind::kInvalidation, peer, key);
  packet.mode = net::RouteMode::kNetworkFlood;
  packet.ttl = ctx_.config.network_flood_ttl;
  packet.version = version;
  packet.size_bytes = net::kHeaderBytes + ctx_.catalog.item(key).size_bytes;
  ctx_.flood.mark_seen(peer, packet.id);
  ctx_.net.broadcast(packet);
  if (ctx_.config.request_retries > 0) {
    // Lossy-channel hardening: the flood is fire-and-forget, so one erased
    // frame can strand a custodian on an old version forever.  Back the
    // flood up with the acknowledged (and retried) push path.
    push_to_key_regions(peer, key, version);
  }
}

void ConsistencyScheme::push_to_key_regions(net::NodeId peer, geo::Key key,
                                            std::uint64_t version) {
  for (const geo::RegionId region :
       ctx_.hash.key_regions(key, ctx_.regions, ctx_.config.replica_count)) {
    push_update_to_region(peer, key, region, version);
  }
}

void ConsistencyScheme::push_update_to_region(net::NodeId peer, geo::Key key,
                                              geo::RegionId region_id,
                                              std::uint64_t version) {
  if (ctx_.regions.find(region_id) == nullptr) return;
  // The updater may itself be this region's custodian — the write already
  // landed locally in initiate_update; pushing would only chase an ack
  // from a custodian that does not exist.
  if (ctx_.peers[peer].region == region_id &&
      ctx_.peers[peer].cache.find_static(key) != nullptr) {
    return;
  }
  const std::uint64_t push_id = ctx_.next_correlation_id();
  PendingPush push;
  push.updater = peer;
  push.key = key;
  push.region = region_id;
  push.version = version;
  push.retries_left = ctx_.config.push_retries;
  pending_pushes_.emplace(push_id, push);
  send_push_packet(push_id);
}

void ConsistencyScheme::send_push_packet(std::uint64_t push_id) {
  const auto it = pending_pushes_.find(push_id);
  if (it == pending_pushes_.end()) return;
  PendingPush& push = it->second;
  const geo::Region* region = ctx_.regions.find(push.region);
  if (region == nullptr || !ctx_.net.is_alive(push.updater)) {
    pending_pushes_.erase(it);
    return;
  }
  net::Packet packet =
      ctx_.make_packet(net::PacketKind::kUpdatePush, push.updater, push.key);
  packet.dest_region = push.region;
  packet.dest_location = region->center;
  packet.version = push.version;
  packet.request_id = push_id;
  packet.size_bytes =
      net::kHeaderBytes + ctx_.catalog.item(push.key).size_bytes;
  if (ctx_.peers[push.updater].region == push.region) {
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = ctx_.config.region_flood_ttl;
    ctx_.flood.mark_seen(push.updater, packet.id);
    ctx_.net.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = ctx_.config.max_route_hops;
    ctx_.forward_geographic(push.updater, packet);
  }
  // With retry hardening enabled the push waits back off exponentially
  // like the remote lookups; the default keeps the original fixed cadence
  // (and therefore the original event timing) bit-for-bit.
  const int attempt = ctx_.config.push_retries - push.retries_left;
  const double wait =
      ctx_.config.request_retries > 0
          ? ctx_.config.remote_timeout_s * std::exp2(attempt)
          : ctx_.config.remote_timeout_s;
  push.timeout =
      ctx_.sim.schedule(wait, [this, push_id] {
        const auto pit = pending_pushes_.find(push_id);
        if (pit == pending_pushes_.end()) return;
        if (pit->second.retries_left-- > 0) {
          if (ctx_.measuring) ++ctx_.metrics.retransmissions;
          send_push_packet(push_id);
        } else {
          PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(),
                         sim::TraceCategory::kConsistency,
                         pit->second.updater,
                         "push of key " + std::to_string(pit->second.key) +
                             " to region " +
                             std::to_string(pit->second.region) + " gave up");
          pending_pushes_.erase(pit);  // custodian unreachable; replica covers
        }
      });
}

void ConsistencyScheme::maybe_ack_push(net::NodeId self,
                                       const net::Packet& packet) {
  if (packet.request_id == 0 || packet.origin == self) return;
  net::Packet ack =
      ctx_.make_packet(net::PacketKind::kPushAck, self, packet.key);
  ack.mode = net::RouteMode::kGeographic;
  ack.dest_node = packet.origin;
  ack.dest_location = packet.origin_location;
  ack.ttl = ctx_.config.max_route_hops;
  ack.request_id = packet.request_id;
  ack.version = packet.version;
  ctx_.forward_geographic(self, ack);
}

void ConsistencyScheme::handle_push_ack(net::NodeId self,
                                        const net::Packet& packet) {
  if (self != packet.dest_node) {
    ctx_.forward_geographic(self, packet);
    return;
  }
  const auto it = pending_pushes_.find(packet.request_id);
  if (it == pending_pushes_.end()) return;  // duplicate ack
  ctx_.sim.cancel(it->second.timeout);
  pending_pushes_.erase(it);
}

bool ConsistencyScheme::apply_custodian_update(net::NodeId self,
                                               const net::Packet& packet) {
  PeerState& p = ctx_.peers[self];
  cache::CacheEntry* custody = p.cache.find_static_mutable(packet.key);
  if (custody == nullptr) return false;
  if (packet.version > custody->version) {
    custody->version = packet.version;
    // Fold the observed inter-update gap into the TTR (Eq. 2).
    ttr_.try_emplace(packet.key, ctx_.config.ttr_alpha,
                     ctx_.config.ttr_initial_s)
        .first->second.on_update(ctx_.sim.now());
  }
  return true;
}

void ConsistencyScheme::handle_update_push(net::NodeId self,
                                           const net::Packet& packet) {
  switch (packet.mode) {
    case net::RouteMode::kRegionFlood: {
      if (!ctx_.flood.mark_seen(self, packet.id)) return;
      if (ctx_.peers[self].region != packet.dest_region) return;
      if (apply_custodian_update(self, packet)) maybe_ack_push(self, packet);
      // Cached dynamic copies in the region refresh opportunistically.
      ctx_.peers[self].cache.refresh(
          packet.key, packet.version,
          ctx_.sim.now() + custodian_ttr_s(packet.key));
      ctx_.flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kGeographic: {
      // The destination region's custodian may sit on the route itself
      // (Figure 2 only needs to "locate the peer which has d"): apply and
      // acknowledge en route.  A custodian of the *other* replica region
      // applies opportunistically but must not consume the push.
      if (apply_custodian_update(self, packet) &&
          ctx_.peers[self].region == packet.dest_region) {
        maybe_ack_push(self, packet);
        ctx_.peers[self].cache.refresh(
            packet.key, packet.version,
            ctx_.sim.now() + custodian_ttr_s(packet.key));
        return;
      }
      if (ctx_.peers[self].region == packet.dest_region) {
        net::PacketRef scoped = ctx_.net.make_ref(packet);
        scoped->mode = net::RouteMode::kRegionFlood;
        scoped->ttl = ctx_.config.region_flood_ttl;
        scoped->src = self;
        scoped->id = ctx_.net.next_packet_id();
        ctx_.flood.mark_seen(self, scoped->id);
        ctx_.peers[self].cache.refresh(
            scoped->key, scoped->version,
            ctx_.sim.now() + custodian_ttr_s(scoped->key));
        ctx_.net.broadcast(std::move(scoped));
        return;
      }
      ctx_.forward_geographic(self, packet);
      return;
    }
    case net::RouteMode::kNetworkFlood:
      return;  // pushes are never network floods
  }
}

double ConsistencyScheme::custodian_ttr_s(geo::Key key) const {
  const auto it = ttr_.find(key);
  return it == ttr_.end() ? ctx_.config.ttr_initial_s : it->second.ttr_s();
}

bool ConsistencyScheme::send_poll(net::NodeId from, geo::Key key,
                                  std::uint64_t correlation_id,
                                  std::uint64_t known_version) {
  const geo::RegionId home = ctx_.hash.home_region(key, ctx_.regions);
  const geo::Region* region = ctx_.regions.find(home);
  if (region == nullptr) return false;
  if (ctx_.measuring) ++ctx_.metrics.polls_sent;
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kConsistency,
                 from, "poll home region for key " + std::to_string(key));

  net::Packet packet = ctx_.make_packet(net::PacketKind::kPoll, from, key);
  packet.dest_region = home;
  packet.dest_location = region->center;
  packet.request_id = correlation_id;
  packet.version = known_version;
  if (ctx_.peers[from].region == home) {
    // Already inside the home region: poll via a localized flood.
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = ctx_.config.region_flood_ttl;
    ctx_.flood.mark_seen(from, packet.id);
    ctx_.net.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = ctx_.config.max_route_hops;
    ctx_.forward_geographic(from, packet);
  }
  return true;
}

void ConsistencyScheme::handle_poll(net::NodeId self,
                                    const net::Packet& packet) {
  const auto reply_from_custodian = [&](const cache::CacheEntry& custody) {
    net::Packet reply =
        ctx_.make_packet(net::PacketKind::kPollReply, self, packet.key);
    reply.mode = net::RouteMode::kGeographic;
    reply.dest_node = packet.origin;
    reply.dest_location = packet.origin_location;
    reply.ttl = ctx_.config.max_route_hops;
    reply.request_id = packet.request_id;
    reply.version = custody.version;
    reply.ttr_s = custodian_ttr_s(packet.key);
    // A stale poller needs the new data: the reply carries it (missed
    // updates are fetched, Figure 3).
    reply.size_bytes = custody.version != packet.version
                           ? net::kHeaderBytes + custody.size_bytes
                           : net::kHeaderBytes;
    ctx_.forward_geographic(self, reply);
  };

  switch (packet.mode) {
    case net::RouteMode::kRegionFlood: {
      if (!ctx_.flood.mark_seen(self, packet.id)) return;
      if (ctx_.peers[self].region != packet.dest_region) return;
      if (const cache::CacheEntry* custody =
              ctx_.peers[self].cache.find_static(packet.key)) {
        reply_from_custodian(*custody);
        return;
      }
      ctx_.flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kGeographic: {
      // An en-route custodian of the polled region answers directly.
      if (const cache::CacheEntry* custody =
              ctx_.peers[self].cache.find_static(packet.key);
          custody != nullptr &&
          ctx_.peers[self].region == packet.dest_region) {
        reply_from_custodian(*custody);
        return;
      }
      if (ctx_.peers[self].region == packet.dest_region) {
        net::PacketRef scoped = ctx_.net.make_ref(packet);
        scoped->mode = net::RouteMode::kRegionFlood;
        scoped->ttl = ctx_.config.region_flood_ttl;
        scoped->src = self;
        scoped->id = ctx_.net.next_packet_id();
        ctx_.flood.mark_seen(self, scoped->id);
        ctx_.net.broadcast(std::move(scoped));
        return;
      }
      ctx_.forward_geographic(self, packet);
      return;
    }
    case net::RouteMode::kNetworkFlood:
      return;
  }
}

void ConsistencyScheme::handle_poll_reply(net::NodeId self,
                                          const net::Packet& packet) {
  if (self != packet.dest_node) {
    ctx_.forward_geographic(self, packet);
    return;
  }
  // The reply always refreshes the local copy's consistency state; when
  // the poller was stale the reply carried the fresh data too.
  ctx_.peers[self].cache.refresh(packet.key, packet.version,
                                 ctx_.sim.now() + std::max(0.0, packet.ttr_s));
  // Hand the correlation back to the retrieval scheme: either a requester
  // validating its own copy or a responder-side validation poll.
  ctx_.retrieval->on_poll_reply(self, packet);
}

void ConsistencyScheme::handle_invalidation(net::NodeId self,
                                            const net::Packet& packet) {
  if (!ctx_.flood.mark_seen(self, packet.id)) return;
  PeerState& p = ctx_.peers[self];
  // Custodians apply the pushed update; plain caches invalidate (§1).
  if (cache::CacheEntry* custody = p.cache.find_static_mutable(packet.key)) {
    if (packet.version > custody->version) custody->version = packet.version;
  }
  if (const cache::CacheEntry* cached = p.cache.find(packet.key)) {
    if (cached->version < packet.version) p.cache.invalidate(packet.key);
  }
  ctx_.flood_forward(self, packet);
}

}  // namespace precinct::core
