// Baseline retrieval schemes (§6.2): network-wide flooding and the
// TTL-doubling expanding-ring search.  Both search with unscoped floods;
// they share the flood launcher and differ in TTL schedule and timeout
// escalation.
#pragma once

#include "core/retrieval_scheme.hpp"

namespace precinct::core {

/// Common flood machinery for the two baselines.
class BaselineRetrieval : public RetrievalScheme {
 public:
  using RetrievalScheme::RetrievalScheme;

 protected:
  void start_search(std::uint64_t request_id) override {
    start_flood(request_id);
  }
  void restart_search(std::uint64_t request_id) override {
    start_flood(request_id);
  }
  void handle_request(net::NodeId self, const net::Packet& packet) override;

  /// Launch the next flood round: the whole network (kFlood) or the
  /// current ring (kRing), per the concrete scheme.
  void start_flood(std::uint64_t request_id);

  /// True for the expanding-ring variant (ring TTL schedule + per-ring
  /// retry wait instead of one full-TTL flood).
  [[nodiscard]] virtual bool expanding() const noexcept = 0;
};

class FloodingRetrieval final : public BaselineRetrieval {
 public:
  using BaselineRetrieval::BaselineRetrieval;
  [[nodiscard]] const char* name() const noexcept override {
    return "flooding";
  }

 protected:
  void on_phase_timeout(std::uint64_t request_id, Phase phase) override;
  [[nodiscard]] bool expanding() const noexcept override { return false; }
};

class ExpandingRingRetrieval final : public BaselineRetrieval {
 public:
  using BaselineRetrieval::BaselineRetrieval;
  [[nodiscard]] const char* name() const noexcept override {
    return "expanding-ring";
  }

 protected:
  void on_phase_timeout(std::uint64_t request_id, Phase phase) override;
  [[nodiscard]] bool expanding() const noexcept override { return true; }
};

}  // namespace precinct::core
