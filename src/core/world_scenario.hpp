// WorldShardedScenario: ONE PReCinCt world cut into region-column domains
// and advanced in parallel by the conservative executor (DESIGN.md §13).
//
// Unlike ShardedScenario (independent tile worlds coupled by gateway
// backhaul), every domain here simulates the SAME world: each holds a
// full same-seed Scenario replica (identical catalog, mobility, radio and
// engine streams), but only *drives* the nodes whose t=0 position falls
// in its region columns.  Real protocol frames cross the cut: a
// transmission whose padded radio disc can reach another domain's nodes
// is marshalled through the executor's mailboxes at its arrival instant
// and re-delivered there against the replica's own (exact) positions —
// retrieval, custody handoff and consistency traffic straddle the cut
// unmodified.
//
// Two structural rules make `shards = K` byte-identical to `shards = 1`
// for every K:
//
//   * the domain decomposition is fixed by the config (one domain per
//     region column); `shards` only maps domains onto worker threads, so
//     what crosses the cut — and in which (due, src, seq) order it is
//     merged — never depends on K;
//
//   * the conservative lookahead is *derived* from the radio's timing
//     floor (WirelessNet::world_lookahead: MAC overhead + propagation),
//     not configured: every cross-domain frame's arrival is provably at
//     least one lookahead after its transmission, so no window ever sees
//     a message from its past (ShardExecutor::post throws otherwise).
//
// Ownership halo: owned kill/revive/region changes are posted as deltas
// applied by the other domains at window boundaries, so remote replicas
// track liveness and region assignment with at most one window of
// staleness (bounded by the lookahead, ~0.6 ms at the defaults).
//
// A cross-domain frame-conservation audit runs after the final window:
// every posted frame/delta must have been processed at its destination
// except those due beyond the run horizon.  run() throws on mismatch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "geo/shard_partition.hpp"
#include "sim/shard_exec.hpp"

namespace precinct::net {
class WirelessNet;
}  // namespace precinct::net

namespace precinct::core {

/// The per-domain replica config for a world-sharded run: shards/tiles
/// collapsed to 1, gateways off.  The seed is deliberately NOT re-salted —
/// identical catalog/mobility/radio/channel streams are what make the
/// replicated state bit-identical across domains.  Shared with the UDP
/// transport daemon (src/transport), whose per-process replicas must be
/// built exactly like the in-sim oracle's.
[[nodiscard]] PrecinctConfig world_domain_config(const PrecinctConfig& world);

/// Validate that `config` can be world-sharded (no tiles, no dynamic
/// regions, no gateway knobs, positive derived lookahead) and return the
/// derived conservative lookahead.  Throws std::invalid_argument
/// otherwise.  Shared with the transport daemon so both executions accept
/// exactly the same configs.
[[nodiscard]] double world_validate(const PrecinctConfig& config);

/// Node id -> owning domain: the region column of each node's t=0
/// position, read from any same-seed replica's radio (every replica
/// computes the identical map).
[[nodiscard]] std::vector<std::uint32_t> world_node_owners(
    const PrecinctConfig& config, net::WirelessNet& reference);

/// Aggregate + per-domain results of a world-sharded run.  Everything
/// except `shards` is invariant to the worker count; world_fingerprint()
/// covers exactly the invariant part.
struct WorldShardedMetrics {
  Metrics aggregate;                 ///< merge_metrics over all domains
  std::vector<Metrics> per_domain;   ///< domain-order window metrics
  std::uint32_t domains = 1;         ///< region-column domains (fixed by config)
  std::uint32_t shards = 1;          ///< worker threads; excluded from the
                                     ///< fingerprint
  double lookahead_s = 0.0;          ///< derived conservative lookahead
  std::uint64_t frames_posted = 0;   ///< cross-domain radio frames marshalled
  std::uint64_t frames_processed = 0;  ///< re-delivered at their destination
  std::uint64_t frames_beyond_horizon = 0;  ///< due after the run end
  std::uint64_t deltas_posted = 0;     ///< liveness/region halo deltas sent
  std::uint64_t deltas_processed = 0;  ///< halo deltas applied
  std::uint64_t deltas_beyond_horizon = 0;
  std::uint64_t windows = 0;           ///< executor lookahead windows
  std::uint64_t messages_merged = 0;   ///< executor mailbox messages
};

/// Canonical text form of everything that must be byte-identical across
/// worker counts: the derived lookahead, the cross-domain traffic and
/// conservation counters, the aggregate fingerprint, then every domain's
/// own fingerprint.  The determinism gate diffs this string for shards
/// in {1, 2, 4, 8}.
[[nodiscard]] std::string world_fingerprint(const WorldShardedMetrics& m);

class WorldShardedScenario {
 public:
  /// Builds one full-world replica per region column, computes node
  /// ownership from the t=0 positions, and binds every replica's radio
  /// and engine into the shard.  Throws std::invalid_argument when the
  /// config cannot be world-sharded (dynamic regions, gateway knobs, or
  /// a non-positive derived lookahead).
  explicit WorldShardedScenario(const PrecinctConfig& config);
  ~WorldShardedScenario();

  WorldShardedScenario(const WorldShardedScenario&) = delete;
  WorldShardedScenario& operator=(const WorldShardedScenario&) = delete;

  /// Warm-up + measurement across all domains, then the frame/delta
  /// conservation audit (throws std::logic_error on a leak).  One-shot.
  WorldShardedMetrics run();

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] Scenario& domain(std::size_t i) { return *domains_.at(i); }
  /// Node id -> owning domain (the region column of its t=0 position).
  [[nodiscard]] const std::vector<std::uint32_t>& owner() const noexcept {
    return owner_;
  }
  [[nodiscard]] const geo::ShardPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] sim::ShardExecutor& executor() noexcept { return *exec_; }
  /// The derived conservative lookahead (MAC overhead + propagation).
  [[nodiscard]] double lookahead_s() const noexcept { return lookahead_s_; }
  [[nodiscard]] const PrecinctConfig& config() const noexcept {
    return config_;
  }

 private:
  class Coupler;  // net::WorldCoupler -> executor mailboxes + counters

  PrecinctConfig config_;
  /// Region-column domains -> worker shards (partition_grid(regions_x, 1,
  /// shards); K > regions_x clamps — a worker with no domain is dead
  /// weight, never a correctness concern).
  geo::ShardPartition partition_;
  double lookahead_s_ = 0.0;
  std::vector<std::uint32_t> owner_;  ///< node -> domain
  std::vector<std::unique_ptr<Scenario>> domains_;
  std::unique_ptr<Coupler> coupler_;
  std::unique_ptr<sim::ShardExecutor> exec_;
  bool ran_ = false;
};

/// Convenience: build, run, return.
[[nodiscard]] WorldShardedMetrics run_world_scenario(
    const PrecinctConfig& config);

}  // namespace precinct::core
