// Configuration file loading: map a key=value KvFile onto PrecinctConfig.
//
// Keys mirror precinct_sim's flag names (without dashes, using
// underscores); unknown keys are an error so typos fail loudly.  See
// `examples/scenario.conf.example` for a complete annotated file.
#pragma once

#include <string>

#include "core/config.hpp"
#include "support/kv_file.hpp"

namespace precinct::core {

/// Apply every key in `kv` on top of `base`.  Throws
/// std::invalid_argument for unknown keys or unparsable values.  The
/// result is not validated; call validate() (Scenario does).
[[nodiscard]] PrecinctConfig config_from_kv(const support::KvFile& kv,
                                            PrecinctConfig base = {});

/// Convenience: load a file and apply it (throws on I/O errors too).
[[nodiscard]] PrecinctConfig config_from_file(const std::string& path,
                                              PrecinctConfig base = {});

}  // namespace precinct::core
