// Configuration file loading: map a key=value KvFile onto PrecinctConfig.
//
// Keys mirror precinct_sim's flag names (without dashes, using
// underscores); unknown keys are an error so typos fail loudly.  See
// `examples/scenario.conf.example` for a complete annotated file.
#pragma once

#include <map>
#include <string>

#include "core/config.hpp"
#include "support/kv_file.hpp"

namespace precinct::core {

/// Apply every key in `kv` on top of `base`.  Throws
/// std::invalid_argument for unknown keys or unparsable values.  The
/// result is not validated; call validate() (Scenario does).
[[nodiscard]] PrecinctConfig config_from_kv(const support::KvFile& kv,
                                            const PrecinctConfig& base = {});

/// Convenience: load a file and apply it (throws on I/O errors too).
[[nodiscard]] PrecinctConfig config_from_file(const std::string& path,
                                              const PrecinctConfig& base = {});

/// Serialize `c` back into the key schema the reader accepts.  Every key
/// is emitted (so reloading over any base reproduces `c` exactly), and
/// doubles use their shortest round-trip form, making write -> read ->
/// write a fixed point.  Throws std::invalid_argument for configurations
/// the schema cannot express (non-square area or region grid, partition
/// windows).
[[nodiscard]] std::map<std::string, std::string> config_to_kv(
    const PrecinctConfig& c);

/// config_to_kv rendered as `key = value` lines in sorted key order —
/// directly parseable by KvFile / config_from_kv.
[[nodiscard]] std::string config_to_string(const PrecinctConfig& c);

/// Write config_to_string(c) to `path`; throws std::runtime_error on I/O
/// failure.  The file is a one-command repro: `precinct_sim --config
/// <path>` replays the exact scenario.
void config_to_file(const PrecinctConfig& c, const std::string& path);

}  // namespace precinct::core
