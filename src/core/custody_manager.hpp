// CustodyManager — custody and membership (paper §2.1, §2.3, §2.4):
// initial custody/replica placement, key custody handoff on inter-region
// mobility, failure and churn handling, and runtime region management
// (merge/separate) with table dissemination and custody relocation.
//
// Communicates with the rest of the stack only via packets and the
// EngineContext (DESIGN.md §8); it owns the kKeyTransfer and
// kRegionUpdate packet kinds.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "core/engine_context.hpp"
#include "net/packet_dispatch.hpp"

namespace precinct::core {

class CustodyManager {
 public:
  explicit CustodyManager(EngineContext& ctx) noexcept : ctx_(ctx) {}

  CustodyManager(const CustodyManager&) = delete;
  CustodyManager& operator=(const CustodyManager&) = delete;

  /// Claim the packet kinds this module owns (kKeyTransfer,
  /// kRegionUpdate).
  void register_handlers(net::PacketDispatcher& dispatch);

  /// Deploy every item's custody copy at a peer in its home region (and a
  /// replica at the replica region, §2.4).
  void place_initial_copies();

  /// One region-boundary check for `peer` (§2.3); hands custody off on a
  /// region change and reschedules itself.
  void check_region(net::NodeId peer);

  /// Crash a peer mid-run; `graceful` hands custody off first (§2.4).
  void fail_peer(net::NodeId peer, bool graceful);

  /// Bring a crashed peer back with fresh state (empty caches, no
  /// custody); it resumes issuing requests and beaconing.
  void revive_peer(net::NodeId peer);

  /// Merge regions `a` and `b`: updates the table, floods the new table
  /// through the network at `initiator`'s cost, and relocates custody of
  /// every key whose home/replica set changed.  Returns the new region's
  /// id, or nullopt if either id is unknown.
  std::optional<geo::RegionId> merge_regions(geo::RegionId a, geo::RegionId b,
                                             net::NodeId initiator);

  /// Separate a region into two halves (same dissemination/relocation
  /// protocol as merge_regions).
  std::optional<std::pair<geo::RegionId, geo::RegionId>> separate_region(
      geo::RegionId id, net::NodeId initiator);

  /// Arm the periodic merge/separate rebalancing loop (dynamic regions).
  void schedule_rebalance();

  /// Peer count per region id (live peers only).
  [[nodiscard]] std::size_t region_population(geo::RegionId region) const;

  /// Custodian (static-space holder) count for a key across live peers.
  [[nodiscard]] std::size_t custody_count(geo::Key key) const;

 private:
  void handle_key_transfer(net::NodeId self, const net::Packet& packet);
  /// Another live peer in `holder`'s region already holding `key`'s
  /// custody copy (kNoNode if none) — the custody-uniqueness guard
  /// consulted before adopting a transfer or re-homing after a merge.
  [[nodiscard]] net::NodeId duplicate_custodian(net::NodeId holder,
                                                geo::Key key) const;
  void handoff_custody(net::NodeId peer, geo::RegionId old_region);
  [[nodiscard]] net::NodeId pick_custody_target(net::NodeId mover,
                                                geo::RegionId region);
  /// Flood the updated region table from `initiator` and refresh every
  /// peer's region id; then relocate custody displaced by the change.
  void commit_region_change(net::NodeId initiator);
  void relocate_displaced_custody();
  void maybe_rebalance_regions();

  EngineContext& ctx_;
};

}  // namespace precinct::core
