// PrecinctEngine — consistency (paper §4): updates, the push phase with
// custodian acknowledgements, the adaptive pull (polls + TTR), Plain-Push
// invalidations.
#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ranges>

namespace precinct::core {

void PrecinctEngine::issue_update(net::NodeId peer, geo::Key key) {
  const std::uint64_t version = catalog_.apply_update(key, sim_.now());
  if (measuring_) ++metrics_.updates_initiated;
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kConsistency, peer,
                 "update key " + std::to_string(key) + " -> v" +
                     std::to_string(version));

  // The updater's own copies reflect the write immediately.  When the
  // updater is itself the custodian, the TTR estimator observes the
  // update here (no push will arrive over the air).
  Peer& p = peers_[peer];
  if (cache::CacheEntry* custody = p.cache.find_static_mutable(key)) {
    custody->version = version;
    ttr_.try_emplace(key, config_.ttr_alpha, config_.ttr_initial_s)
        .first->second.on_update(sim_.now());
  }
  p.cache.refresh(key, version, sim_.now());

  switch (config_.consistency) {
    case consistency::Mode::kNone:
      break;
    case consistency::Mode::kPlainPush: {
      // Flood the update to the entire network (§1).  Carries the data so
      // custodians apply it; caches merely invalidate.
      net::Packet packet = make_packet(net::PacketKind::kInvalidation, peer,
                                       key);
      packet.mode = net::RouteMode::kNetworkFlood;
      packet.ttl = config_.network_flood_ttl;
      packet.version = version;
      packet.size_bytes = net::kHeaderBytes + catalog_.item(key).size_bytes;
      flood_.mark_seen(peer, packet.id);
      net_.broadcast(packet);
      break;
    }
    case consistency::Mode::kPullEveryTime:
    case consistency::Mode::kPushAdaptivePull: {
      // Push phase (Figure 2): route the update to the home region and
      // every replica region; flooding inside those regions locates the
      // peer holding the custody copy.
      for (const geo::RegionId region :
           hash_.key_regions(key, regions_, config_.replica_count)) {
        push_update_to_region(peer, key, region, version);
      }
      break;
    }
  }
}

void PrecinctEngine::push_update_to_region(net::NodeId peer, geo::Key key,
                                           geo::RegionId region_id,
                                           std::uint64_t version) {
  if (regions_.find(region_id) == nullptr) return;
  // The updater may itself be this region's custodian — the write already
  // landed locally in issue_update; pushing would only chase an ack from
  // a custodian that does not exist.
  if (peers_[peer].region == region_id &&
      peers_[peer].cache.find_static(key) != nullptr) {
    return;
  }
  const std::uint64_t push_id = next_request_id_++;
  PendingPush push;
  push.updater = peer;
  push.key = key;
  push.region = region_id;
  push.version = version;
  push.retries_left = config_.push_retries;
  pending_pushes_.emplace(push_id, push);
  send_push_packet(push_id);
}

void PrecinctEngine::send_push_packet(std::uint64_t push_id) {
  const auto it = pending_pushes_.find(push_id);
  if (it == pending_pushes_.end()) return;
  PendingPush& push = it->second;
  const geo::Region* region = regions_.find(push.region);
  if (region == nullptr || !net_.is_alive(push.updater)) {
    pending_pushes_.erase(it);
    return;
  }
  net::Packet packet = make_packet(net::PacketKind::kUpdatePush, push.updater,
                                   push.key);
  packet.dest_region = push.region;
  packet.dest_location = region->center;
  packet.version = push.version;
  packet.request_id = push_id;
  packet.size_bytes = net::kHeaderBytes + catalog_.item(push.key).size_bytes;
  if (peers_[push.updater].region == push.region) {
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = config_.region_flood_ttl;
    flood_.mark_seen(push.updater, packet.id);
    net_.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = config_.max_route_hops;
    forward_geographic(push.updater, packet);
  }
  push.timeout = sim_.schedule(config_.remote_timeout_s, [this, push_id] {
    const auto pit = pending_pushes_.find(push_id);
    if (pit == pending_pushes_.end()) return;
    if (pit->second.retries_left-- > 0) {
      send_push_packet(push_id);
    } else {
      PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kConsistency,
                     pit->second.updater,
                     "push of key " + std::to_string(pit->second.key) +
                         " to region " + std::to_string(pit->second.region) +
                         " gave up");
      pending_pushes_.erase(pit);  // custodian unreachable; replica covers
    }
  });
}

void PrecinctEngine::maybe_ack_push(net::NodeId self,
                                    const net::Packet& packet) {
  if (packet.request_id == 0 || packet.origin == self) return;
  net::Packet ack = make_packet(net::PacketKind::kPushAck, self, packet.key);
  ack.mode = net::RouteMode::kGeographic;
  ack.dest_node = packet.origin;
  ack.dest_location = packet.origin_location;
  ack.ttl = config_.max_route_hops;
  ack.request_id = packet.request_id;
  ack.version = packet.version;
  forward_geographic(self, ack);
}

void PrecinctEngine::handle_push_ack(net::NodeId self,
                                     const net::Packet& packet) {
  if (self != packet.dest_node) {
    forward_geographic(self, packet);
    return;
  }
  const auto it = pending_pushes_.find(packet.request_id);
  if (it == pending_pushes_.end()) return;  // duplicate ack
  sim_.cancel(it->second.timeout);
  pending_pushes_.erase(it);
}

bool PrecinctEngine::apply_custodian_update(net::NodeId self,
                                            const net::Packet& packet) {
  Peer& p = peers_[self];
  cache::CacheEntry* custody = p.cache.find_static_mutable(packet.key);
  if (custody == nullptr) return false;
  if (packet.version > custody->version) {
    custody->version = packet.version;
    // Fold the observed inter-update gap into the TTR (Eq. 2).
    ttr_.try_emplace(packet.key, config_.ttr_alpha, config_.ttr_initial_s)
        .first->second.on_update(sim_.now());
  }
  return true;
}

void PrecinctEngine::handle_update_push(net::NodeId self,
                                        const net::Packet& packet) {
  switch (packet.mode) {
    case net::RouteMode::kRegionFlood: {
      if (!flood_.mark_seen(self, packet.id)) return;
      if (peers_[self].region != packet.dest_region) return;
      if (apply_custodian_update(self, packet)) maybe_ack_push(self, packet);
      // Cached dynamic copies in the region refresh opportunistically.
      peers_[self].cache.refresh(packet.key, packet.version,
                                 sim_.now() + custodian_ttr_s(packet.key));
      flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kGeographic: {
      // The destination region's custodian may sit on the route itself
      // (Figure 2 only needs to "locate the peer which has d"): apply and
      // acknowledge en route.  A custodian of the *other* replica region
      // applies opportunistically but must not consume the push.
      if (apply_custodian_update(self, packet) &&
          peers_[self].region == packet.dest_region) {
        maybe_ack_push(self, packet);
        peers_[self].cache.refresh(packet.key, packet.version,
                                   sim_.now() + custodian_ttr_s(packet.key));
        return;
      }
      if (peers_[self].region == packet.dest_region) {
        net::PacketRef scoped = net_.make_ref(packet);
        scoped->mode = net::RouteMode::kRegionFlood;
        scoped->ttl = config_.region_flood_ttl;
        scoped->src = self;
        scoped->id = net_.next_packet_id();
        flood_.mark_seen(self, scoped->id);
        peers_[self].cache.refresh(scoped->key, scoped->version,
                                   sim_.now() + custodian_ttr_s(scoped->key));
        net_.broadcast(std::move(scoped));
        return;
      }
      forward_geographic(self, packet);
      return;
    }
    case net::RouteMode::kNetworkFlood:
      return;  // pushes are never network floods
  }
}

double PrecinctEngine::custodian_ttr_s(geo::Key key) {
  const auto it = ttr_.find(key);
  return it == ttr_.end() ? config_.ttr_initial_s : it->second.ttr_s();
}

void PrecinctEngine::handle_poll(net::NodeId self, const net::Packet& packet) {
  const auto reply_from_custodian = [&](const cache::CacheEntry& custody) {
    net::Packet reply = make_packet(net::PacketKind::kPollReply, self,
                                    packet.key);
    reply.mode = net::RouteMode::kGeographic;
    reply.dest_node = packet.origin;
    reply.dest_location = packet.origin_location;
    reply.ttl = config_.max_route_hops;
    reply.request_id = packet.request_id;
    reply.version = custody.version;
    reply.ttr_s = custodian_ttr_s(packet.key);
    // A stale poller needs the new data: the reply carries it (missed
    // updates are fetched, Figure 3).
    reply.size_bytes = custody.version != packet.version
                           ? net::kHeaderBytes + custody.size_bytes
                           : net::kHeaderBytes;
    forward_geographic(self, reply);
  };

  switch (packet.mode) {
    case net::RouteMode::kRegionFlood: {
      if (!flood_.mark_seen(self, packet.id)) return;
      if (peers_[self].region != packet.dest_region) return;
      if (const cache::CacheEntry* custody =
              peers_[self].cache.find_static(packet.key)) {
        reply_from_custodian(*custody);
        return;
      }
      flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kGeographic: {
      // An en-route custodian of the polled region answers directly.
      if (const cache::CacheEntry* custody =
              peers_[self].cache.find_static(packet.key);
          custody != nullptr && peers_[self].region == packet.dest_region) {
        reply_from_custodian(*custody);
        return;
      }
      if (peers_[self].region == packet.dest_region) {
        net::PacketRef scoped = net_.make_ref(packet);
        scoped->mode = net::RouteMode::kRegionFlood;
        scoped->ttl = config_.region_flood_ttl;
        scoped->src = self;
        scoped->id = net_.next_packet_id();
        flood_.mark_seen(self, scoped->id);
        net_.broadcast(std::move(scoped));
        return;
      }
      forward_geographic(self, packet);
      return;
    }
    case net::RouteMode::kNetworkFlood:
      return;
  }
}

void PrecinctEngine::handle_poll_reply(net::NodeId self,
                                       const net::Packet& packet) {
  if (self != packet.dest_node) {
    forward_geographic(self, packet);
    return;
  }
  // The reply always refreshes the local copy's consistency state; when
  // the poller was stale the reply carried the fresh data too.
  peers_[self].cache.refresh(packet.key, packet.version,
                             sim_.now() + std::max(0.0, packet.ttr_s));

  if (const auto it = pending_.find(packet.request_id);
      it != pending_.end() && it->second.phase == Phase::kValidate) {
    // Requester validating its own cached copy before serving itself.
    Pending& pending = it->second;
    pending.candidate_version = packet.version;
    complete_request(packet.request_id, pending.candidate_class,
                     pending.candidate_version, pending.candidate_bytes,
                     packet.ttr_s, pending.candidate_region,
                     /*validated=*/true);
    return;
  }
  // Otherwise a responder-side validation (serve_from_copy).
  finish_responder_poll(packet.request_id);
}

void PrecinctEngine::handle_invalidation(net::NodeId self,
                                         const net::Packet& packet) {
  if (!flood_.mark_seen(self, packet.id)) return;
  Peer& p = peers_[self];
  // Custodians apply the pushed update; plain caches invalidate (§1).
  if (cache::CacheEntry* custody = p.cache.find_static_mutable(packet.key)) {
    if (packet.version > custody->version) custody->version = packet.version;
  }
  if (const cache::CacheEntry* cached = p.cache.find(packet.key)) {
    if (cached->version < packet.version) p.cache.invalidate(packet.key);
  }
  flood_forward(self, packet);
}

}  // namespace precinct::core
