#include "core/config_io.hpp"

#include <charconv>
#include <cstdio>
#include <functional>
#include <map>
#include <stdexcept>

namespace precinct::core {

namespace {

/// Parse the `blackout` value: `node:start:end` windows joined by `;`.
std::vector<channel::Blackout> parse_blackouts(const std::string& spec) {
  std::vector<channel::Blackout> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string window = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (window.empty()) continue;
    const std::size_t c1 = window.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : window.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      throw std::invalid_argument(
          "config: blackout window '" + window +
          "' must be node:start:end (';'-separated list)");
    }
    try {
      channel::Blackout b;
      b.node = static_cast<std::uint32_t>(std::stoul(window.substr(0, c1)));
      b.start_s = std::stod(window.substr(c1 + 1, c2 - c1 - 1));
      b.end_s = std::stod(window.substr(c2 + 1));
      out.push_back(b);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("config: blackout window '" + window +
                                  "' has a non-numeric field");
    }
  }
  return out;
}

/// Exact 64-bit parse: seeds use the full uint64_t range, which a round
/// trip through double would truncate past 2^53.
std::uint64_t parse_u64(const std::string& value, const char* key) {
  std::uint64_t out = 0;
  const char* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("config: key '" + std::string(key) +
                                "' is not an unsigned integer: '" + value +
                                "'");
  }
  return out;
}

/// Built-in names map onto the enum; anything else is kept as a registry
/// name for validate()/SchemeRegistry to resolve.
void set_retrieval(PrecinctConfig& c, const std::string& name) {
  c.retrieval_scheme.clear();
  if (name == "precinct") {
    c.retrieval = RetrievalKind::kPrecinct;
  } else if (name == "flooding") {
    c.retrieval = RetrievalKind::kFlooding;
  } else if (name == "expanding-ring") {
    c.retrieval = RetrievalKind::kExpandingRing;
  } else {
    c.retrieval_scheme = name;
  }
}

void set_consistency(PrecinctConfig& c, const std::string& name) {
  c.consistency_scheme.clear();
  try {
    c.consistency = consistency::mode_from_string(name);
  } catch (const std::invalid_argument&) {
    c.consistency_scheme = name;  // externally registered scheme
  }
  if (c.consistency != consistency::Mode::kNone ||
      !c.consistency_scheme.empty()) {
    c.updates_enabled = true;
  }
}

/// Apply one `class.<name>.<attr>` key to the heterogeneous-fleet list.
/// KvFile iterates keys sorted, and validate() restricts class names to
/// [A-Za-z0-9_] (every allowed character orders after '.'), so appending
/// classes in key order yields the canonical name-sorted list.
void apply_class_key(PrecinctConfig& c, const std::string& key,
                     const std::string& value, const support::KvFile& kv) {
  const std::size_t name_start = std::string("class.").size();
  const std::size_t attr_dot = key.rfind('.');
  if (attr_dot == std::string::npos || attr_dot <= name_start) {
    throw std::invalid_argument(
        "config: class key '" + key +
        "' must be class.<name>.<count|cache_kb|speed|fixed>");
  }
  const std::string name = key.substr(name_start, attr_dot - name_start);
  const std::string attr = key.substr(attr_dot + 1);
  NodeClassConfig* cls = nullptr;
  for (NodeClassConfig& existing : c.node_classes) {
    if (existing.name == name) cls = &existing;
  }
  if (cls == nullptr) {
    NodeClassConfig fresh;
    fresh.name = name;
    c.node_classes.push_back(std::move(fresh));
    cls = &c.node_classes.back();
  }
  if (attr == "count") {
    cls->count = static_cast<std::size_t>(parse_u64(value, key.c_str()));
  } else if (attr == "cache_kb") {
    cls->cache_kb = kv.get_number(key, 0.0);
  } else if (attr == "speed") {
    cls->speed = kv.get_number(key, 0.0);
  } else if (attr == "fixed") {
    cls->fixed = kv.get_bool(key, false);
  } else {
    throw std::invalid_argument(
        "config: class key '" + key +
        "' must be class.<name>.<count|cache_kb|speed|fixed>");
  }
}

}  // namespace

std::size_t PrecinctConfig::class_of(std::size_t node) const noexcept {
  std::size_t offset = 0;
  for (std::size_t k = 0; k < node_classes.size(); ++k) {
    offset += node_classes[k].count;
    if (node < offset) return k;
  }
  return node_classes.empty() ? 0 : node_classes.size() - 1;
}

bool PrecinctConfig::has_fixed_nodes() const noexcept {
  for (const NodeClassConfig& cls : node_classes) {
    if (cls.fixed) return true;
  }
  return false;
}

PrecinctConfig::PrecinctConfig() = default;
PrecinctConfig::PrecinctConfig(const PrecinctConfig&) = default;
PrecinctConfig::PrecinctConfig(PrecinctConfig&&) noexcept = default;
PrecinctConfig& PrecinctConfig::operator=(const PrecinctConfig&) = default;
PrecinctConfig& PrecinctConfig::operator=(PrecinctConfig&&) noexcept = default;
PrecinctConfig::~PrecinctConfig() = default;

PrecinctConfig config_from_kv(const support::KvFile& kv,
                              const PrecinctConfig& base) {
  PrecinctConfig c = base;
  // One handler per key; the map doubles as the list of valid keys.
  const std::map<std::string, std::function<void(const std::string&)>>
      handlers{
          {"nodes",
           [&](const std::string&) {
             c.n_nodes = static_cast<std::size_t>(kv.get_number("nodes", 0));
           }},
          {"area",
           [&](const std::string&) {
             const double side = kv.get_number("area", 1200.0);
             c.area = {{0.0, 0.0}, {side, side}};
           }},
          {"regions",
           [&](const std::string&) {
             c.regions_x = c.regions_y =
                 static_cast<std::uint32_t>(kv.get_number("regions", 3));
           }},
          {"range",
           [&](const std::string&) {
             c.wireless.range_m = kv.get_number("range", 250.0);
           }},
          {"mobility",
           [&](const std::string& v) {
             c.mobility_model = v;
             c.mobile = v != "static";
           }},
          {"speed_max",
           [&](const std::string&) {
             c.v_max = kv.get_number("speed_max", 6.0);
           }},
          {"speed_min",
           [&](const std::string&) {
             c.v_min = kv.get_number("speed_min", 0.5);
           }},
          {"pause",
           [&](const std::string&) {
             c.pause_s = kv.get_number("pause", 5.0);
           }},
          {"street_spacing",
           [&](const std::string&) {
             c.street_spacing_m = kv.get_number("street_spacing", 100.0);
           }},
          {"turn_prob",
           [&](const std::string&) {
             c.turn_probability = kv.get_number("turn_prob", 0.25);
           }},
          {"commuter_period",
           [&](const std::string&) {
             c.commuter_period_s = kv.get_number("commuter_period", 400.0);
           }},
          {"commuter_hubs",
           [&](const std::string&) {
             c.commuter_hubs =
                 static_cast<std::size_t>(kv.get_number("commuter_hubs", 3));
           }},
          {"items",
           [&](const std::string&) {
             c.catalog.n_items =
                 static_cast<std::size_t>(kv.get_number("items", 1000));
           }},
          {"request_interval",
           [&](const std::string&) {
             c.mean_request_interval_s =
                 kv.get_number("request_interval", 30.0);
           }},
          {"update_interval",
           [&](const std::string&) {
             c.mean_update_interval_s = kv.get_number("update_interval", 30.0);
           }},
          {"updates",
           [&](const std::string&) {
             c.updates_enabled = kv.get_bool("updates", false);
           }},
          {"zipf",
           [&](const std::string&) {
             c.zipf_theta = kv.get_number("zipf", 0.8);
           }},
          {"rate_multiplier",
           [&](const std::string&) {
             c.request_rate_multiplier =
                 kv.get_number("rate_multiplier", 1.0);
           }},
          {"zipf_drift",
           [&](const std::string&) {
             c.zipf_drift_per_s = kv.get_number("zipf_drift", 0.0);
           }},
          {"zipf_drift_step",
           [&](const std::string&) {
             c.zipf_drift_step_s = kv.get_number("zipf_drift_step", 10.0);
           }},
          {"policy", [&](const std::string& v) { c.cache_policy = v; }},
          {"cache",
           [&](const std::string&) {
             c.cache_fraction = kv.get_number("cache", 0.02);
           }},
          {"consistency",
           [&](const std::string& v) { set_consistency(c, v); }},
          {"ttr_alpha",
           [&](const std::string&) {
             c.ttr_alpha = kv.get_number("ttr_alpha", 0.5);
           }},
          {"retrieval",
           [&](const std::string& v) { set_retrieval(c, v); }},
          {"replicas",
           [&](const std::string&) {
             c.replica_count =
                 static_cast<std::size_t>(kv.get_number("replicas", 1));
           }},
          {"retries",
           [&](const std::string&) {
             c.request_retries =
                 static_cast<int>(kv.get_number("retries", 0));
           }},
          {"channel",
           [&](const std::string& v) { c.wireless.channel.model = v; }},
          {"blackout",
           [&](const std::string& v) {
             c.wireless.channel.blackouts = parse_blackouts(v);
           }},
          {"loss",
           [&](const std::string&) {
             c.wireless.channel.loss_p = kv.get_number("loss", 0.0);
           }},
          {"edge_start",
           [&](const std::string&) {
             c.wireless.channel.edge_start_fraction =
                 kv.get_number("edge_start", 0.7);
           }},
          {"edge_loss",
           [&](const std::string&) {
             c.wireless.channel.edge_loss_p = kv.get_number("edge_loss", 0.8);
           }},
          {"ge_enter_burst",
           [&](const std::string&) {
             c.wireless.channel.ge_enter_burst_p =
                 kv.get_number("ge_enter_burst", 0.02);
           }},
          {"ge_burst_frames",
           [&](const std::string&) {
             c.wireless.channel.ge_mean_burst_frames =
                 kv.get_number("ge_burst_frames", 5.0);
           }},
          {"ge_loss_good",
           [&](const std::string&) {
             c.wireless.channel.ge_loss_good =
                 kv.get_number("ge_loss_good", 0.0);
           }},
          {"ge_loss_bad",
           [&](const std::string&) {
             c.wireless.channel.ge_loss_bad =
                 kv.get_number("ge_loss_bad", 1.0);
           }},
          {"crash_rate",
           [&](const std::string&) {
             c.crash_rate_per_s = kv.get_number("crash_rate", 0.0);
           }},
          {"join_rate",
           [&](const std::string&) {
             c.join_rate_per_s = kv.get_number("join_rate", 0.0);
           }},
          {"graceful_fraction",
           [&](const std::string&) {
             c.graceful_fraction = kv.get_number("graceful_fraction", 1.0);
           }},
          {"dynamic_regions",
           [&](const std::string&) {
             c.dynamic_regions = kv.get_bool("dynamic_regions", false);
           }},
          {"use_beacons",
           [&](const std::string&) {
             c.use_beacons = kv.get_bool("use_beacons", false);
           }},
          {"beacon_interval",
           [&](const std::string&) {
             c.beacon_interval_s = kv.get_number("beacon_interval", 1.0);
           }},
          {"neighbor_lifetime",
           [&](const std::string&) {
             c.neighbor_lifetime_s = kv.get_number("neighbor_lifetime", 3.0);
           }},
          {"hotspot_interval",
           [&](const std::string&) {
             c.hotspot_rotation_interval_s =
                 kv.get_number("hotspot_interval", 0.0);
           }},
          {"hotspot_shift",
           [&](const std::string&) {
             c.hotspot_shift =
                 static_cast<std::size_t>(kv.get_number("hotspot_shift", 100));
           }},
          {"warmup",
           [&](const std::string&) {
             c.warmup_s = kv.get_number("warmup", 150.0);
           }},
          {"measure",
           [&](const std::string&) {
             c.measure_s = kv.get_number("measure", 900.0);
           }},
          {"shards",
           [&](const std::string&) {
             c.shards =
                 static_cast<std::uint32_t>(kv.get_number("shards", 1.0));
           }},
          {"tiles",
           [&](const std::string&) {
             c.tiles_x = c.tiles_y =
                 static_cast<std::uint32_t>(kv.get_number("tiles", 1.0));
           }},
          {"gateway_latency",
           [&](const std::string&) {
             c.gateway_latency_s = kv.get_number("gateway_latency", 0.0);
           }},
          {"gateway_interval",
           [&](const std::string&) {
             c.gateway_interval_s = kv.get_number("gateway_interval", 0.0);
           }},
          {"workload_script",
           [&](const std::string& v) { c.workload_script = v; }},
          {"transport_base_port",
           [&](const std::string& v) {
             c.transport_base_port = static_cast<std::uint32_t>(
                 parse_u64(v, "transport_base_port"));
           }},
          {"transport_pace",
           [&](const std::string& v) { c.transport_pace = v; }},
          {"transport_speedup",
           [&](const std::string&) {
             c.transport_speedup = kv.get_number("transport_speedup", 1.0);
           }},
          {"transport_status_interval",
           [&](const std::string&) {
             c.transport_status_interval_s =
                 kv.get_number("transport_status_interval", 0.5);
           }},
          {"transport_retry",
           [&](const std::string&) {
             c.transport_retry_s = kv.get_number("transport_retry", 0.05);
           }},
          {"transport_timeout",
           [&](const std::string&) {
             c.transport_timeout_s = kv.get_number("transport_timeout", 30.0);
           }},
          {"transport_linger",
           [&](const std::string&) {
             c.transport_linger_s = kv.get_number("transport_linger", 5.0);
           }},
          {"seed",
           [&](const std::string& v) { c.seed = parse_u64(v, "seed"); }},
          {"check", [&](const std::string& v) { c.check = v; }},
          {"check_stride",
           [&](const std::string& v) {
             c.check_stride = parse_u64(v, "check_stride");
           }},
      };
  bool saw_class = false;
  bool saw_nodes = false;
  for (const auto& [key, value] : kv.values()) {
    if (key.rfind("class.", 0) == 0) {
      if (!saw_class) {
        // The first class key replaces any fleet inherited from `base`.
        c.node_classes.clear();
        saw_class = true;
      }
      apply_class_key(c, key, value, kv);
      continue;
    }
    if (key == "nodes") saw_nodes = true;
    const auto it = handlers.find(key);
    if (it == handlers.end()) {
      throw std::invalid_argument("config: unknown key '" + key + "'");
    }
    it->second(value);
  }
  if (saw_class && !saw_nodes) {
    // Classes alone define the fleet size; an explicit `nodes` key must
    // instead agree with the class counts (validate() checks the sum).
    std::size_t total = 0;
    for (const NodeClassConfig& cls : c.node_classes) total += cls.count;
    c.n_nodes = total;
  }
  return c;
}

PrecinctConfig config_from_file(const std::string& path,
                                const PrecinctConfig& base) {
  return config_from_kv(support::KvFile::load(path), base);
}

namespace {

[[noreturn]] void fail_unwritable(const std::string& what) {
  throw std::invalid_argument("config: not writable: " + what);
}

/// Shortest round-trip decimal form: re-parsing with strtod recovers the
/// exact double, so write -> read -> write is a fixed point.
std::string format_number(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string format_blackouts(const std::vector<channel::Blackout>& windows) {
  std::string out;
  for (const channel::Blackout& b : windows) {
    if (!out.empty()) out += ';';
    out += std::to_string(b.node) + ':' + format_number(b.start_s) + ':' +
           format_number(b.end_s);
  }
  return out;
}

}  // namespace

std::map<std::string, std::string> config_to_kv(const PrecinctConfig& c) {
  // Only configurations expressible in the key schema can be written
  // back; anything the reader cannot reconstruct is an error here rather
  // than a silent lossy save.
  if (c.area.min.x != 0.0 || c.area.min.y != 0.0 ||
      c.area.width() != c.area.height()) {
    fail_unwritable("area must be a square anchored at the origin");
  }
  if (c.regions_x != c.regions_y) {
    fail_unwritable("region grid must be square (regions_x == regions_y)");
  }
  if (!c.wireless.channel.partitions.empty()) {
    fail_unwritable("partition windows have no config key");
  }
  std::map<std::string, std::string> kv;
  kv["nodes"] = std::to_string(c.n_nodes);
  kv["area"] = format_number(c.area.width());
  kv["regions"] = std::to_string(c.regions_x);
  kv["range"] = format_number(c.wireless.range_m);
  kv["mobility"] = c.mobile ? c.mobility_model : "static";
  kv["speed_max"] = format_number(c.v_max);
  kv["speed_min"] = format_number(c.v_min);
  kv["pause"] = format_number(c.pause_s);
  kv["street_spacing"] = format_number(c.street_spacing_m);
  kv["turn_prob"] = format_number(c.turn_probability);
  kv["commuter_period"] = format_number(c.commuter_period_s);
  kv["commuter_hubs"] = std::to_string(c.commuter_hubs);
  for (const NodeClassConfig& cls : c.node_classes) {
    const std::string prefix = "class." + cls.name + ".";
    kv[prefix + "count"] = std::to_string(cls.count);
    kv[prefix + "cache_kb"] = format_number(cls.cache_kb);
    kv[prefix + "speed"] = format_number(cls.speed);
    kv[prefix + "fixed"] = cls.fixed ? "true" : "false";
  }
  kv["items"] = std::to_string(c.catalog.n_items);
  kv["request_interval"] = format_number(c.mean_request_interval_s);
  kv["update_interval"] = format_number(c.mean_update_interval_s);
  // Alphabetical replay order puts `consistency` before `updates`, so the
  // explicit flag below wins over set_consistency's implied enable.
  kv["updates"] = c.updates_enabled ? "true" : "false";
  kv["zipf"] = format_number(c.zipf_theta);
  kv["rate_multiplier"] = format_number(c.request_rate_multiplier);
  kv["zipf_drift"] = format_number(c.zipf_drift_per_s);
  kv["zipf_drift_step"] = format_number(c.zipf_drift_step_s);
  kv["policy"] = c.cache_policy;
  kv["cache"] = format_number(c.cache_fraction);
  kv["consistency"] = c.consistency_scheme.empty()
                          ? consistency::to_string(c.consistency)
                          : c.consistency_scheme;
  kv["ttr_alpha"] = format_number(c.ttr_alpha);
  kv["retrieval"] = c.retrieval_scheme.empty() ? to_string(c.retrieval)
                                               : c.retrieval_scheme;
  kv["replicas"] = std::to_string(c.replica_count);
  kv["retries"] = std::to_string(c.request_retries);
  kv["channel"] = c.wireless.channel.model;
  kv["loss"] = format_number(c.wireless.channel.loss_p);
  kv["edge_start"] = format_number(c.wireless.channel.edge_start_fraction);
  kv["edge_loss"] = format_number(c.wireless.channel.edge_loss_p);
  kv["ge_enter_burst"] = format_number(c.wireless.channel.ge_enter_burst_p);
  kv["ge_burst_frames"] =
      format_number(c.wireless.channel.ge_mean_burst_frames);
  kv["ge_loss_good"] = format_number(c.wireless.channel.ge_loss_good);
  kv["ge_loss_bad"] = format_number(c.wireless.channel.ge_loss_bad);
  if (!c.wireless.channel.blackouts.empty()) {
    kv["blackout"] = format_blackouts(c.wireless.channel.blackouts);
  }
  kv["crash_rate"] = format_number(c.crash_rate_per_s);
  kv["join_rate"] = format_number(c.join_rate_per_s);
  kv["graceful_fraction"] = format_number(c.graceful_fraction);
  kv["dynamic_regions"] = c.dynamic_regions ? "true" : "false";
  kv["use_beacons"] = c.use_beacons ? "true" : "false";
  kv["beacon_interval"] = format_number(c.beacon_interval_s);
  kv["neighbor_lifetime"] = format_number(c.neighbor_lifetime_s);
  kv["hotspot_interval"] = format_number(c.hotspot_rotation_interval_s);
  kv["hotspot_shift"] = std::to_string(c.hotspot_shift);
  kv["warmup"] = format_number(c.warmup_s);
  kv["measure"] = format_number(c.measure_s);
  if (c.tiles_x != c.tiles_y) {
    fail_unwritable("tile grid must be square (tiles_x == tiles_y)");
  }
  kv["shards"] = std::to_string(c.shards);
  kv["tiles"] = std::to_string(c.tiles_x);
  kv["gateway_latency"] = format_number(c.gateway_latency_s);
  kv["gateway_interval"] = format_number(c.gateway_interval_s);
  if (!c.workload_script.empty()) kv["workload_script"] = c.workload_script;
  kv["transport_base_port"] = std::to_string(c.transport_base_port);
  kv["transport_pace"] = c.transport_pace;
  kv["transport_speedup"] = format_number(c.transport_speedup);
  kv["transport_status_interval"] =
      format_number(c.transport_status_interval_s);
  kv["transport_retry"] = format_number(c.transport_retry_s);
  kv["transport_timeout"] = format_number(c.transport_timeout_s);
  kv["transport_linger"] = format_number(c.transport_linger_s);
  kv["seed"] = std::to_string(c.seed);
  if (!c.check.empty()) kv["check"] = c.check;
  kv["check_stride"] = std::to_string(c.check_stride);
  return kv;
}

std::string config_to_string(const PrecinctConfig& c) {
  std::string out;
  for (const auto& [key, value] : config_to_kv(c)) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

void config_to_file(const PrecinctConfig& c, const std::string& path) {
  const std::string text = config_to_string(c);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("config: cannot write '" + path + "'");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    throw std::runtime_error("config: short write to '" + path + "'");
  }
}

}  // namespace precinct::core
