#include "core/config_io.hpp"

#include <functional>
#include <map>
#include <stdexcept>

namespace precinct::core {

namespace {

/// Built-in names map onto the enum; anything else is kept as a registry
/// name for validate()/SchemeRegistry to resolve.
void set_retrieval(PrecinctConfig& c, const std::string& name) {
  c.retrieval_scheme.clear();
  if (name == "precinct") {
    c.retrieval = RetrievalKind::kPrecinct;
  } else if (name == "flooding") {
    c.retrieval = RetrievalKind::kFlooding;
  } else if (name == "expanding-ring") {
    c.retrieval = RetrievalKind::kExpandingRing;
  } else {
    c.retrieval_scheme = name;
  }
}

void set_consistency(PrecinctConfig& c, const std::string& name) {
  c.consistency_scheme.clear();
  try {
    c.consistency = consistency::mode_from_string(name);
  } catch (const std::invalid_argument&) {
    c.consistency_scheme = name;  // externally registered scheme
  }
  if (c.consistency != consistency::Mode::kNone ||
      !c.consistency_scheme.empty()) {
    c.updates_enabled = true;
  }
}

}  // namespace

PrecinctConfig config_from_kv(const support::KvFile& kv, PrecinctConfig base) {
  PrecinctConfig c = std::move(base);
  // One handler per key; the map doubles as the list of valid keys.
  const std::map<std::string, std::function<void(const std::string&)>>
      handlers{
          {"nodes",
           [&](const std::string&) {
             c.n_nodes = static_cast<std::size_t>(kv.get_number("nodes", 0));
           }},
          {"area",
           [&](const std::string&) {
             const double side = kv.get_number("area", 1200.0);
             c.area = {{0.0, 0.0}, {side, side}};
           }},
          {"regions",
           [&](const std::string&) {
             c.regions_x = c.regions_y =
                 static_cast<std::uint32_t>(kv.get_number("regions", 3));
           }},
          {"range",
           [&](const std::string&) {
             c.wireless.range_m = kv.get_number("range", 250.0);
           }},
          {"mobility",
           [&](const std::string& v) {
             c.mobility_model = v;
             c.mobile = v != "static";
           }},
          {"speed_max",
           [&](const std::string&) {
             c.v_max = kv.get_number("speed_max", 6.0);
           }},
          {"speed_min",
           [&](const std::string&) {
             c.v_min = kv.get_number("speed_min", 0.5);
           }},
          {"pause",
           [&](const std::string&) {
             c.pause_s = kv.get_number("pause", 5.0);
           }},
          {"items",
           [&](const std::string&) {
             c.catalog.n_items =
                 static_cast<std::size_t>(kv.get_number("items", 1000));
           }},
          {"request_interval",
           [&](const std::string&) {
             c.mean_request_interval_s =
                 kv.get_number("request_interval", 30.0);
           }},
          {"update_interval",
           [&](const std::string&) {
             c.mean_update_interval_s = kv.get_number("update_interval", 30.0);
           }},
          {"updates",
           [&](const std::string&) {
             c.updates_enabled = kv.get_bool("updates", false);
           }},
          {"zipf",
           [&](const std::string&) {
             c.zipf_theta = kv.get_number("zipf", 0.8);
           }},
          {"policy", [&](const std::string& v) { c.cache_policy = v; }},
          {"cache",
           [&](const std::string&) {
             c.cache_fraction = kv.get_number("cache", 0.02);
           }},
          {"consistency",
           [&](const std::string& v) { set_consistency(c, v); }},
          {"ttr_alpha",
           [&](const std::string&) {
             c.ttr_alpha = kv.get_number("ttr_alpha", 0.5);
           }},
          {"retrieval",
           [&](const std::string& v) { set_retrieval(c, v); }},
          {"replicas",
           [&](const std::string&) {
             c.replica_count =
                 static_cast<std::size_t>(kv.get_number("replicas", 1));
           }},
          {"retries",
           [&](const std::string&) {
             c.request_retries =
                 static_cast<int>(kv.get_number("retries", 0));
           }},
          {"channel",
           [&](const std::string& v) { c.wireless.channel.model = v; }},
          {"loss",
           [&](const std::string&) {
             c.wireless.channel.loss_p = kv.get_number("loss", 0.0);
           }},
          {"edge_start",
           [&](const std::string&) {
             c.wireless.channel.edge_start_fraction =
                 kv.get_number("edge_start", 0.7);
           }},
          {"edge_loss",
           [&](const std::string&) {
             c.wireless.channel.edge_loss_p = kv.get_number("edge_loss", 0.8);
           }},
          {"ge_enter_burst",
           [&](const std::string&) {
             c.wireless.channel.ge_enter_burst_p =
                 kv.get_number("ge_enter_burst", 0.02);
           }},
          {"ge_burst_frames",
           [&](const std::string&) {
             c.wireless.channel.ge_mean_burst_frames =
                 kv.get_number("ge_burst_frames", 5.0);
           }},
          {"ge_loss_good",
           [&](const std::string&) {
             c.wireless.channel.ge_loss_good =
                 kv.get_number("ge_loss_good", 0.0);
           }},
          {"ge_loss_bad",
           [&](const std::string&) {
             c.wireless.channel.ge_loss_bad =
                 kv.get_number("ge_loss_bad", 1.0);
           }},
          {"crash_rate",
           [&](const std::string&) {
             c.crash_rate_per_s = kv.get_number("crash_rate", 0.0);
           }},
          {"join_rate",
           [&](const std::string&) {
             c.join_rate_per_s = kv.get_number("join_rate", 0.0);
           }},
          {"graceful_fraction",
           [&](const std::string&) {
             c.graceful_fraction = kv.get_number("graceful_fraction", 1.0);
           }},
          {"dynamic_regions",
           [&](const std::string&) {
             c.dynamic_regions = kv.get_bool("dynamic_regions", false);
           }},
          {"use_beacons",
           [&](const std::string&) {
             c.use_beacons = kv.get_bool("use_beacons", false);
           }},
          {"beacon_interval",
           [&](const std::string&) {
             c.beacon_interval_s = kv.get_number("beacon_interval", 1.0);
           }},
          {"neighbor_lifetime",
           [&](const std::string&) {
             c.neighbor_lifetime_s = kv.get_number("neighbor_lifetime", 3.0);
           }},
          {"hotspot_interval",
           [&](const std::string&) {
             c.hotspot_rotation_interval_s =
                 kv.get_number("hotspot_interval", 0.0);
           }},
          {"hotspot_shift",
           [&](const std::string&) {
             c.hotspot_shift =
                 static_cast<std::size_t>(kv.get_number("hotspot_shift", 100));
           }},
          {"warmup",
           [&](const std::string&) {
             c.warmup_s = kv.get_number("warmup", 150.0);
           }},
          {"measure",
           [&](const std::string&) {
             c.measure_s = kv.get_number("measure", 900.0);
           }},
          {"seed",
           [&](const std::string&) {
             c.seed = static_cast<std::uint64_t>(kv.get_number("seed", 1));
           }},
      };
  for (const auto& [key, value] : kv.values()) {
    const auto it = handlers.find(key);
    if (it == handlers.end()) {
      throw std::invalid_argument("config: unknown key '" + key + "'");
    }
    it->second(value);
  }
  return c;
}

PrecinctConfig config_from_file(const std::string& path, PrecinctConfig base) {
  return config_from_kv(support::KvFile::load(path), std::move(base));
}

}  // namespace precinct::core
