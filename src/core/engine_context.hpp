// EngineContext — the one explicit seam between the protocol modules.
//
// The engine owns the simulation substrate (radio, regions, catalog,
// per-peer state, metrics) and every module — retrieval scheme,
// consistency scheme, custody manager, workload driver — receives a
// reference to this context instead of reaching into the engine.  The
// architecture rule (DESIGN.md §8): modules communicate only via packets
// and this context; no module holds a pointer into another module's
// private state.
//
// The context also hosts the handful of helpers every layer needs —
// packet construction, copy lookup, the geographic/flood forwarding
// primitives — so they exist exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_store.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "geo/geo_hash.hpp"
#include "geo/region_table.hpp"
#include "net/wireless_net.hpp"
#include "routing/flood.hpp"
#include "routing/gpsr.hpp"
#include "routing/neighbor_provider.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "workload/data_catalog.hpp"
#include "workload/zipf.hpp"

namespace precinct::check {
class InvariantChecker;
}  // namespace precinct::check

namespace precinct::core {

class RetrievalScheme;
class ConsistencyScheme;
class CustodyManager;
class WorkloadDriver;

/// This engine's slice of a world-sharded run (DESIGN.md §13): which
/// domain it is and which nodes it simulates authoritatively.  Inactive
/// (owner == nullptr) in a plain run — owns() is then always true, so
/// every ownership-gated loop degenerates to the unsharded behavior.
struct ShardView {
  std::uint32_t domain = 0;
  std::uint32_t n_domains = 1;
  const std::uint32_t* owner = nullptr;  ///< node id -> owning domain

  [[nodiscard]] bool active() const noexcept { return owner != nullptr; }
  [[nodiscard]] bool owns(net::NodeId node) const noexcept {
    return owner == nullptr || owner[node] == domain;
  }
};

/// Per-peer protocol state.  Peers never share state except via packets;
/// this is simply where one peer's caches and generators live (the whole
/// simulation is single-threaded, see sim/simulator.hpp).
struct PeerState {
  cache::CacheStore cache;
  geo::RegionId region = geo::kInvalidRegion;
  support::Rng rng;
  /// Bumped on revival; scheduled per-peer loops (requests, updates,
  /// beacons, region checks) die when their generation goes stale, so
  /// a crash/rejoin cycle cannot double the workload.
  std::uint32_t generation = 0;

  PeerState(std::size_t capacity_bytes,
            std::unique_ptr<cache::ReplacementPolicy> policy, support::Rng r)
      : cache(capacity_bytes, std::move(policy)), rng(r) {}
};

class EngineContext {
 public:
  EngineContext(const PrecinctConfig& config, sim::Simulator& sim,
                net::WirelessNet& net, geo::RegionTable& regions,
                geo::GeoHash& hash, workload::DataCatalog& catalog,
                workload::ZipfGenerator& zipf, routing::Gpsr& gpsr,
                routing::FloodController& flood, support::Rng& rng,
                std::vector<PeerState>& peers, Metrics& metrics) noexcept
      : config(config),
        sim(sim),
        net(net),
        regions(regions),
        hash(hash),
        catalog(catalog),
        zipf(zipf),
        gpsr(gpsr),
        flood(flood),
        rng(rng),
        peers(peers),
        metrics(metrics) {}

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  // -- shared substrate (owned by the engine) ---------------------------------
  const PrecinctConfig& config;
  sim::Simulator& sim;
  net::WirelessNet& net;
  geo::RegionTable& regions;
  geo::GeoHash& hash;
  workload::DataCatalog& catalog;
  workload::ZipfGenerator& zipf;
  routing::Gpsr& gpsr;
  routing::FloodController& flood;
  support::Rng& rng;  ///< engine-level draws (failure injection)
  std::vector<PeerState>& peers;
  Metrics& metrics;
  /// Beacon-fed neighbor tables; null when config.use_beacons is false.
  routing::BeaconNeighborProvider* beacons = nullptr;

  // -- module wiring (set once by the engine after construction) --------------
  RetrievalScheme* retrieval = nullptr;
  ConsistencyScheme* consistency = nullptr;
  CustodyManager* custody = nullptr;
  WorkloadDriver* workload = nullptr;

  // -- run state --------------------------------------------------------------
  sim::Tracer* tracer = nullptr;  ///< not owned; may be null
  /// Runtime invariant auditor (DESIGN.md §10); null unless config.check
  /// selects categories.  Observe-only — never mutates protocol state.
  check::InvariantChecker* checker = nullptr;
  bool measuring = false;
  /// Representative region diameter; normalizes reg_dst in the GD-LD
  /// utility so the wd weight is unit-comparable across region counts.
  double region_diameter = 1.0;
  RoutingStats route_drops;  ///< lifetime forwarding-drop counters
  /// World-sharded ownership view; inactive in plain runs.  Set by
  /// PrecinctEngine::set_shard_view before initialize().
  ShardView shard;

  /// Correlation ids for requests, responder polls and update pushes.
  /// One shared counter keeps ids unique across all modules; a
  /// world-sharded engine strides it by the domain count (seeded
  /// domain + 1) so correlation ids are globally unique too.
  [[nodiscard]] std::uint64_t next_correlation_id() noexcept {
    const std::uint64_t id = next_id_;
    next_id_ += id_stride_;
    return id;
  }
  void stride_correlation_ids(std::uint64_t first,
                              std::uint64_t stride) noexcept {
    next_id_ = first;
    id_stride_ = stride;
  }

  /// Single write path for a peer's region: keeps PeerState::region and
  /// the SoA region column (net.node_state()) coherent, so population
  /// sweeps can scan the column instead of striding over PeerStates.
  /// Routed through the radio so a world-sharded owned change also posts
  /// its halo delta to the other domains (which may throw on a
  /// conservative-bound violation, hence no noexcept).
  void set_region(net::NodeId peer, geo::RegionId region) {
    peers[peer].region = region;
    net.set_node_region(peer, region);
  }

  // -- shared helpers ----------------------------------------------------------
  /// A peer's best local copy of a key: custody first, then dynamic cache.
  struct Copy {
    const cache::CacheEntry* entry = nullptr;
    bool is_custody = false;
  };
  [[nodiscard]] Copy find_copy(net::NodeId peer, geo::Key key) const;

  [[nodiscard]] net::Packet make_packet(net::PacketKind kind,
                                        net::NodeId origin, geo::Key key);
  [[nodiscard]] bool in_region(net::NodeId node, geo::RegionId region) const;
  [[nodiscard]] double region_distance(geo::RegionId a, geo::RegionId b) const;

  /// The owner's current version of `key`: the home-region custodian's
  /// copy (falling back to the replica's).  This is the reference for
  /// false-hit accounting — the paper's consistency target is the owner,
  /// not an omniscient oracle.  nullopt when no custodian is alive.
  [[nodiscard]] std::optional<std::uint64_t> authoritative_version(
      geo::Key key) const;

  /// Re-derive region_diameter from the (possibly reconfigured) table.
  void refresh_region_diameter();

  // -- forwarding primitives ---------------------------------------------------
  /// Forward a pooled frame by position (GPSR + final-hop unicast + void
  /// recovery).  The ref must be uniquely held — per-hop fields are
  /// mutated in place before the frame is handed to the radio.
  void forward_geographic(net::NodeId self, net::PacketRef packet);
  /// Pool-wrap a received or stack-built packet and forward it.
  void forward_geographic(net::NodeId self, const net::Packet& packet) {
    forward_geographic(self, net.make_ref(packet));
  }
  void flood_forward(net::NodeId self, const net::Packet& packet);

 private:
  std::uint64_t next_id_ = 1;
  std::uint64_t id_stride_ = 1;
};

}  // namespace precinct::core
