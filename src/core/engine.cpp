#include "core/engine.hpp"

#include <cmath>
#include <string>

#include "check/invariant_checker.hpp"
#include "core/scheme_registry.hpp"

namespace precinct::core {

namespace {

/// Effective scheme names: the free-form config strings win; otherwise
/// the enum fields map to the built-in names.
std::string retrieval_name(const PrecinctConfig& config) {
  return config.retrieval_scheme.empty() ? to_string(config.retrieval)
                                         : config.retrieval_scheme;
}

std::string consistency_name(const PrecinctConfig& config) {
  return config.consistency_scheme.empty()
             ? consistency::to_string(config.consistency)
             : config.consistency_scheme;
}

}  // namespace

PrecinctEngine::PrecinctEngine(const PrecinctConfig& config,
                               sim::Simulator& simulator,
                               net::WirelessNet& network,
                               geo::RegionTable region_table,
                               workload::DataCatalog& catalog)
    : config_(config),
      sim_(simulator),
      net_(network),
      regions_(std::move(region_table)),
      hash_(config.area),
      catalog_(catalog),
      zipf_(catalog.size(), config.zipf_theta),
      beacons_(config.use_beacons
                   ? std::make_unique<routing::BeaconNeighborProvider>(
                         network, network.node_count(),
                         config.neighbor_lifetime_s)
                   : nullptr),
      gpsr_(beacons_ ? std::make_unique<routing::Gpsr>(network, *beacons_)
                     : std::make_unique<routing::Gpsr>(network)),
      flood_(network.node_count()),
      rng_(support::hash_combine(config.seed, 0xEC61)),
      ctx_(config_, sim_, net_, regions_, hash_, catalog_, zipf_, *gpsr_,
           flood_, rng_, peers_, metrics_) {
  const std::size_t capacity =
      config_.cache_capacity_bytes(catalog_.total_bytes());
  peers_.reserve(net_.node_count());
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    std::size_t peer_capacity = capacity;
    if (!config_.node_classes.empty()) {
      const NodeClassConfig& cls =
          config_.node_classes[config_.class_of(i)];
      if (cls.cache_kb > 0.0) {
        peer_capacity = static_cast<std::size_t>(cls.cache_kb * 1024.0);
      }
      net_.node_state().set_fixed(i, cls.fixed);
    }
    peers_.emplace_back(peer_capacity,
                        cache::make_policy(config_.cache_policy,
                                           config_.gdld_weights),
                        rng_.split(i));
  }
  ctx_.beacons = beacons_.get();
  ctx_.refresh_region_diameter();

  // Resolve the strategy modules by name and wire them into the context,
  // then let each claim the packet kinds it owns.
  const SchemeRegistry& registry = SchemeRegistry::instance();
  retrieval_ = registry.make_retrieval(retrieval_name(config_), ctx_);
  consistency_ = registry.make_consistency(consistency_name(config_), ctx_);
  custody_ = std::make_unique<CustodyManager>(ctx_);
  workload_ = std::make_unique<WorkloadDriver>(ctx_);
  ctx_.retrieval = retrieval_.get();
  ctx_.consistency = consistency_.get();
  ctx_.custody = custody_.get();
  ctx_.workload = workload_.get();
  retrieval_->register_handlers(dispatch_);
  consistency_->register_handlers(dispatch_);
  custody_->register_handlers(dispatch_);
  workload_->register_handlers(dispatch_);

  net_.set_receive_handler(
      [this](net::NodeId self, const net::Packet& packet) {
        on_receive(self, packet);
      });
  if (beacons_ && config_.beacon_piggyback) {
    net_.set_snoop_handler(
        [this](net::NodeId self, const net::Packet& packet) {
          beacons_->on_beacon(self, packet.src, packet.src_location,
                              sim_.now());
        });
  }

  // Correctness harness (DESIGN.md §10): audit the selected invariant
  // categories from the simulator's observe-only post-event hook.  With
  // config_.check empty no hook is installed and the drain loop is
  // untouched, so runs with checks off stay byte-identical.
  if (!config_.check.empty()) {
    checker_ = std::make_unique<check::InvariantChecker>(
        ctx_, check::parse_categories(config_.check), config_.check_stride);
    ctx_.checker = checker_.get();
    sim_.set_post_event_hook([this] { checker_->on_event(); });
  }
}

PrecinctEngine::~PrecinctEngine() {
  // The simulator outlives the engine in some harnesses; never leave a
  // hook pointing at a dead checker.
  if (checker_ != nullptr) sim_.set_post_event_hook({});
}

void PrecinctEngine::initialize() {
  // Every node gets a region — replicas included, so routing/custody
  // sweeps see the full world.  World-sharded runs replicate this loop
  // identically in every domain (same positions from the shared-seed
  // mobility oracle); the workload loops below run for owned nodes only.
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    ctx_.set_region(i, regions_.containing(net_.position(i)));
  }
  custody_->place_initial_copies();
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    if (!ctx_.shard.owns(i)) continue;
    workload_->schedule_next_request(i);
    if (config_.updates_enabled && consistency_->generates_updates()) {
      workload_->schedule_next_update(i);
    }
  }
  if (config_.mobile) workload_->schedule_region_checks();
  if (config_.zipf_drift_per_s != 0.0) workload_->schedule_zipf_drift();
  if (config_.crash_rate_per_s > 0.0) workload_->schedule_crashes();
  if (config_.join_rate_per_s > 0.0) workload_->schedule_joins();
  if (config_.use_beacons) {
    for (net::NodeId i = 0; i < net_.node_count(); ++i) {
      if (!ctx_.shard.owns(i)) continue;
      workload_->schedule_beacon(i);
    }
  }
  if (config_.dynamic_regions) custody_->schedule_rebalance();
  if (!config_.workload_script.empty()) {
    // Every replica loads the same file; schedule_script applies only the
    // owned nodes' lines, so a world-sharded fleet runs each line once.
    workload_->schedule_script(
        workload::load_script(config_.workload_script));
  }
}

void PrecinctEngine::on_receive(net::NodeId self, const net::Packet& raw) {
  net::Packet packet = raw;
  // Piggybacked position learning: any frame heard from src is as good
  // as a beacon from it.
  if (beacons_ != nullptr && config_.beacon_piggyback &&
      packet.src != net::kNoNode) {
    beacons_->on_beacon(self, packet.src, packet.src_location, sim_.now());
  }
  if (packet.recovery) {
    // Void-recovery admission: participate at most once per packet, and
    // only when strictly closer to the destination than the stuck node —
    // progress stays monotone, so recovery cannot storm.
    if (!flood_.mark_seen(self, packet.id)) return;
    if (geo::distance(net_.position(self), packet.dest_location) >=
        geo::distance(net_.position(packet.src), packet.dest_location)) {
      return;
    }
    packet.recovery = false;
  }
  dispatch_.dispatch(self, packet);
}

// ---------------------------------------------------------------------------
// measurement
// ---------------------------------------------------------------------------

void PrecinctEngine::take_timeline_sample() {
  Metrics::Sample sample;
  sample.t_s = sim_.now() - measure_start_;
  sample.requests_completed = metrics_.requests_completed;
  sample.hit_ratio = metrics_.hit_ratio();
  sample.avg_latency_s = metrics_.avg_latency_s();
  sample.energy_mj =
      net_.energy().network_total().total_mj() - energy_at_start_;
  metrics_.timeline.push_back(sample);
  sim_.schedule(config_.sample_interval_s,
                [this] { take_timeline_sample(); });
}

void PrecinctEngine::start_measurement() {
  ctx_.measuring = true;
  measure_start_ = sim_.now();
  metrics_ = Metrics{};
  const auto energy_now = net_.energy().network_total();
  energy_at_start_ = energy_now.total_mj();
  energy_broadcast_at_start_ =
      energy_now.broadcast_send_mj + energy_now.broadcast_recv_mj;
  energy_p2p_at_start_ =
      energy_now.p2p_send_mj + energy_now.p2p_recv_mj +
      energy_now.p2p_discard_mj;
  msgs_at_start_ = net_.stats().total_sends();
  bytes_at_start_ = net_.stats().total_bytes();
  wire_sent_at_start_ = net_.stats().total_wire_bytes_sent();
  wire_received_at_start_ = net_.stats().total_wire_bytes_received();
  consistency_msgs_at_start_ = net_.stats().consistency_sends();
  frames_lost_at_start_ = net_.frames_lost();
  energy_channel_at_start_ = energy_now.channel_discard_mj;
  channel_drops_at_start_ = net_.frames_dropped_by_channel();
  channel_drops_by_cause_at_start_ = net_.channel_drops_by_cause();
  route_drops_at_start_ = ctx_.route_drops;
  if (config_.sample_interval_s > 0.0) {
    sim_.schedule(config_.sample_interval_s,
                  [this] { take_timeline_sample(); });
  }
}

Metrics PrecinctEngine::finalize() {
  const auto energy = net_.energy().network_total();
  metrics_.energy_total_mj = energy.total_mj() - energy_at_start_;
  metrics_.energy_broadcast_mj =
      energy.broadcast_send_mj + energy.broadcast_recv_mj -
      energy_broadcast_at_start_;
  metrics_.energy_p2p_mj = energy.p2p_send_mj + energy.p2p_recv_mj +
                           energy.p2p_discard_mj - energy_p2p_at_start_;
  metrics_.messages_sent = net_.stats().total_sends() - msgs_at_start_;
  metrics_.bytes_sent = net_.stats().total_bytes() - bytes_at_start_;
  metrics_.wire_bytes_sent =
      net_.stats().total_wire_bytes_sent() - wire_sent_at_start_;
  metrics_.wire_bytes_received =
      net_.stats().total_wire_bytes_received() - wire_received_at_start_;
  metrics_.consistency_messages =
      net_.stats().consistency_sends() - consistency_msgs_at_start_;
  metrics_.frames_lost = net_.frames_lost() - frames_lost_at_start_;
  metrics_.energy_channel_discard_mj =
      energy.channel_discard_mj - energy_channel_at_start_;
  metrics_.frames_dropped_by_channel =
      net_.frames_dropped_by_channel() - channel_drops_at_start_;
  for (std::size_t i = 0; i < metrics_.channel_drops_by_cause.size(); ++i) {
    metrics_.channel_drops_by_cause[i] = net_.channel_drops_by_cause()[i] -
                                         channel_drops_by_cause_at_start_[i];
  }
  metrics_.events_executed = sim_.events_executed();
  metrics_.routing.drops_void =
      ctx_.route_drops.drops_void - route_drops_at_start_.drops_void;
  metrics_.routing.drops_ttl =
      ctx_.route_drops.drops_ttl - route_drops_at_start_.drops_ttl;
  // One last audit so even runs shorter than the stride are checked.
  // Ordered before the pending-to-failed fold below, which breaks the
  // lifecycle identity the checker asserts.
  if (checker_ != nullptr) checker_->audit();
  // Requests still in flight at the end of the window count as failed so
  // success_ratio is conservative.
  metrics_.requests_failed += retrieval_->measured_pending();
  return metrics_;
}

}  // namespace precinct::core
