#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ranges>

namespace precinct::core {

PrecinctEngine::PrecinctEngine(const PrecinctConfig& config,
                               sim::Simulator& simulator,
                               net::WirelessNet& network,
                               geo::RegionTable region_table,
                               workload::DataCatalog& catalog)
    : config_(config),
      sim_(simulator),
      net_(network),
      regions_(std::move(region_table)),
      hash_(config.area),
      catalog_(catalog),
      zipf_(catalog.size(), config.zipf_theta),
      beacons_(config.use_beacons
                   ? std::make_unique<routing::BeaconNeighborProvider>(
                         network, network.node_count(),
                         config.neighbor_lifetime_s)
                   : nullptr),
      gpsr_(beacons_ ? std::make_unique<routing::Gpsr>(network, *beacons_)
                     : std::make_unique<routing::Gpsr>(network)),
      flood_(network.node_count()),
      rng_(support::hash_combine(config.seed, 0xEC61)) {
  const std::size_t capacity =
      config_.cache_capacity_bytes(catalog_.total_bytes());
  peers_.reserve(net_.node_count());
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    peers_.emplace_back(capacity,
                        cache::make_policy(config_.cache_policy,
                                           config_.gdld_weights),
                        rng_.split(i));
  }
  // Normalize region distance by a representative region diameter so the
  // utility's wd weight is unit-comparable across region-count sweeps.
  if (!regions_.empty()) {
    const geo::Rect& extent = regions_.regions().front().extent;
    region_diameter_ = std::hypot(extent.width(), extent.height());
  }
  net_.set_receive_handler(
      [this](net::NodeId self, const net::Packet& packet) {
        on_receive(self, packet);
      });
  if (beacons_ && config_.beacon_piggyback) {
    net_.set_snoop_handler(
        [this](net::NodeId self, const net::Packet& packet) {
          beacons_->on_beacon(self, packet.src, packet.src_location,
                              sim_.now());
        });
  }
}

// ---------------------------------------------------------------------------
// setup & drivers
// ---------------------------------------------------------------------------

void PrecinctEngine::initialize() {
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    peers_[i].region = regions_.containing(net_.position(i));
  }
  place_initial_copies();
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    schedule_next_request(i);
    if (config_.updates_enabled &&
        config_.consistency != consistency::Mode::kNone) {
      schedule_next_update(i);
    }
  }
  if (config_.mobile) schedule_region_checks();
  if (config_.crash_rate_per_s > 0.0) schedule_crashes();
  if (config_.join_rate_per_s > 0.0) schedule_joins();
  if (config_.use_beacons) {
    for (net::NodeId i = 0; i < net_.node_count(); ++i) schedule_beacon(i);
  }
  if (config_.dynamic_regions) {
    sim_.schedule(config_.region_reconfig_interval_s,
                  [this] { maybe_rebalance_regions(); });
  }
}

// ---------------------------------------------------------------------------
// region management (§2.1)
// ---------------------------------------------------------------------------

void PrecinctEngine::place_initial_copies() {
  // Deploy every item's custody copy at a peer in its home region (and a
  // replica at the replica region, §2.4).  Deployment routes through the
  // same region-scoped flood the protocol uses, so custody must land in
  // the region's *flood-connected main component*: pick the largest
  // intra-region component and take its member nearest the center.  This
  // is the network's initial state, not protocol traffic.
  const auto region_components = [&](geo::RegionId region) {
    std::vector<std::vector<net::NodeId>> components;
    std::vector<net::NodeId> members;
    for (net::NodeId i = 0; i < net_.node_count(); ++i) {
      if (net_.is_alive(i) && peers_[i].region == region) members.push_back(i);
    }
    std::vector<char> visited(members.size(), 0);
    for (std::size_t s = 0; s < members.size(); ++s) {
      if (visited[s]) continue;
      std::vector<net::NodeId> component;
      std::vector<std::size_t> stack{s};
      visited[s] = 1;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        component.push_back(members[u]);
        for (std::size_t v = 0; v < members.size(); ++v) {
          if (!visited[v] && net_.in_range(members[u], members[v])) {
            visited[v] = 1;
            stack.push_back(v);
          }
        }
      }
      components.push_back(std::move(component));
    }
    return components;
  };
  // Cache per-region placements: the main component is a property of the
  // initial topology, not of the key.
  std::unordered_map<geo::RegionId, std::vector<net::NodeId>> main_component;
  for (const geo::Region& r : regions_.regions()) {
    auto components = region_components(r.id);
    std::size_t best = 0;
    for (std::size_t i = 1; i < components.size(); ++i) {
      if (components[i].size() > components[best].size()) best = i;
    }
    main_component.emplace(
        r.id, components.empty() ? std::vector<net::NodeId>{}
                                 : std::move(components[best]));
  }
  for (std::size_t rank = 0; rank < catalog_.size(); ++rank) {
    const workload::DataItem& item = catalog_.item_at(rank);
    const auto place = [&](geo::RegionId region,
                           net::NodeId exclude) -> net::NodeId {
      const geo::Region* r = regions_.find(region);
      if (r == nullptr) return net::kNoNode;
      net::NodeId best = net::kNoNode;
      double best_d = std::numeric_limits<double>::infinity();
      const auto it = main_component.find(region);
      if (it != main_component.end()) {
        for (const net::NodeId i : it->second) {
          if (i == exclude) continue;
          const double d = geo::distance(net_.position(i), r->center);
          if (d < best_d) {
            best_d = d;
            best = i;
          }
        }
      }
      if (best != net::kNoNode) return best;
      // Region empty (or only the excluded peer): global nearest fallback.
      for (net::NodeId i = 0; i < net_.node_count(); ++i) {
        if (i == exclude || !net_.is_alive(i)) continue;
        const double d = geo::distance(net_.position(i), r->center);
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      return best;
    };
    cache::CacheEntry entry;
    entry.key = item.key;
    entry.size_bytes = item.size_bytes;
    entry.version = item.version;
    net::NodeId previous = net::kNoNode;
    for (const geo::RegionId region :
         hash_.key_regions(item.key, regions_, config_.replica_count)) {
      const net::NodeId holder = place(region, previous);
      if (holder != net::kNoNode) {
        peers_[holder].cache.put_static(entry);
        previous = holder;
      }
    }
  }
}

geo::Key PrecinctEngine::sample_key(net::NodeId peer) {
  std::size_t rank = zipf_.sample(peers_[peer].rng);
  if (config_.hotspot_rotation_interval_s > 0.0) {
    const auto rotations = static_cast<std::size_t>(
        sim_.now() / config_.hotspot_rotation_interval_s);
    rank = (rank + rotations * config_.hotspot_shift) % catalog_.size();
  }
  return catalog_.key_of(rank);
}

void PrecinctEngine::schedule_next_request(net::NodeId peer) {
  const double wait =
      peers_[peer].rng.exponential(config_.mean_request_interval_s);
  const std::uint32_t generation = peers_[peer].generation;
  sim_.schedule(wait, [this, peer, generation] {
    if (net_.is_alive(peer) && peers_[peer].generation == generation) {
      issue_request(peer, sample_key(peer));
      schedule_next_request(peer);
    }
  });
}

void PrecinctEngine::schedule_next_update(net::NodeId peer) {
  const double wait =
      peers_[peer].rng.exponential(config_.mean_update_interval_s);
  const std::uint32_t generation = peers_[peer].generation;
  sim_.schedule(wait, [this, peer, generation] {
    if (net_.is_alive(peer) && peers_[peer].generation == generation) {
      issue_update(peer, sample_key(peer));
      schedule_next_update(peer);
    }
  });
}

void PrecinctEngine::schedule_region_checks() {
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    // Stagger checks so the whole fleet doesn't probe at the same instant.
    const double offset =
        peers_[i].rng.uniform(0.0, config_.region_check_interval_s);
    sim_.schedule(offset, [this, i] { check_region(i); });
  }
}

void PrecinctEngine::schedule_beacon(net::NodeId peer) {
  // Jittered periodic position broadcast (GPSR neighbor discovery).
  const double wait = config_.beacon_interval_s *
                      (0.75 + 0.5 * peers_[peer].rng.uniform());
  const std::uint32_t generation = peers_[peer].generation;
  sim_.schedule(wait, [this, peer, generation] {
    if (!net_.is_alive(peer) || peers_[peer].generation != generation) return;
    // Piggybacking (GPSR): recent data traffic already announced our
    // position to everyone in range; skip the redundant beacon.
    const bool traffic_recent =
        config_.beacon_piggyback &&
        sim_.now() - net_.last_transmission_s(peer) <
            config_.beacon_interval_s;
    if (!traffic_recent) {
      net::Packet beacon = make_packet(net::PacketKind::kBeacon, peer, 0);
      beacon.size_bytes = 32;  // id + position + checksum
      beacon.ttl = 1;          // never forwarded
      net_.broadcast(beacon);
    }
    schedule_beacon(peer);
  });
}

void PrecinctEngine::handle_beacon(net::NodeId self,
                                   const net::Packet& packet) {
  if (beacons_ != nullptr) {
    beacons_->on_beacon(self, packet.origin, packet.origin_location,
                        sim_.now());
  }
}

// ---------------------------------------------------------------------------
// measurement
// ---------------------------------------------------------------------------

void PrecinctEngine::take_timeline_sample() {
  Metrics::Sample sample;
  sample.t_s = sim_.now() - measure_start_;
  sample.requests_completed = metrics_.requests_completed;
  sample.hit_ratio = metrics_.hit_ratio();
  sample.avg_latency_s = metrics_.avg_latency_s();
  sample.energy_mj =
      net_.energy().network_total().total_mj() - energy_at_start_;
  metrics_.timeline.push_back(sample);
  sim_.schedule(config_.sample_interval_s,
                [this] { take_timeline_sample(); });
}

void PrecinctEngine::start_measurement() {
  measuring_ = true;
  measure_start_ = sim_.now();
  metrics_ = Metrics{};
  const auto energy_now = net_.energy().network_total();
  energy_at_start_ = energy_now.total_mj();
  energy_broadcast_at_start_ =
      energy_now.broadcast_send_mj + energy_now.broadcast_recv_mj;
  energy_p2p_at_start_ =
      energy_now.p2p_send_mj + energy_now.p2p_recv_mj +
      energy_now.p2p_discard_mj;
  msgs_at_start_ = net_.stats().total_sends();
  bytes_at_start_ = net_.stats().total_bytes();
  consistency_msgs_at_start_ = net_.stats().consistency_sends();
  frames_lost_at_start_ = net_.frames_lost();
  if (config_.sample_interval_s > 0.0) {
    sim_.schedule(config_.sample_interval_s,
                  [this] { take_timeline_sample(); });
  }
}

Metrics PrecinctEngine::finalize() {
  const auto energy = net_.energy().network_total();
  metrics_.energy_total_mj = energy.total_mj() - energy_at_start_;
  metrics_.energy_broadcast_mj =
      energy.broadcast_send_mj + energy.broadcast_recv_mj -
      energy_broadcast_at_start_;
  metrics_.energy_p2p_mj = energy.p2p_send_mj + energy.p2p_recv_mj +
                           energy.p2p_discard_mj - energy_p2p_at_start_;
  metrics_.messages_sent = net_.stats().total_sends() - msgs_at_start_;
  metrics_.bytes_sent = net_.stats().total_bytes() - bytes_at_start_;
  metrics_.consistency_messages =
      net_.stats().consistency_sends() - consistency_msgs_at_start_;
  metrics_.frames_lost = net_.frames_lost() - frames_lost_at_start_;
  metrics_.events_executed = sim_.events_executed();
  // Requests still in flight at the end of the window count as failed so
  // success_ratio is conservative.
  for (const auto& [id, p] : pending_) {
    if (p.measured) ++metrics_.requests_failed;
  }
  return metrics_;
}

// ---------------------------------------------------------------------------
// request path (requester side)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// receive dispatch
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// consistency (§4)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// custody & mobility (§2.3, §2.4)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// forwarding primitives
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// small helpers
// ---------------------------------------------------------------------------

PrecinctEngine::Copy PrecinctEngine::find_copy(net::NodeId peer,
                                               geo::Key key) const {
  const Peer& p = peers_[peer];
  if (const cache::CacheEntry* custody = p.cache.find_static(key)) {
    return {custody, true};
  }
  if (const cache::CacheEntry* cached = p.cache.find(key)) {
    return {cached, false};
  }
  return {};
}

std::optional<std::uint64_t> PrecinctEngine::authoritative_version(
    geo::Key key) const {
  const geo::RegionId home = hash_.home_region(key, regions_);
  const geo::RegionId replica = hash_.replica_region(key, regions_);
  std::optional<std::uint64_t> from_replica;
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    if (!net_.is_alive(i)) continue;
    const cache::CacheEntry* custody = peers_[i].cache.find_static(key);
    if (custody == nullptr) continue;
    if (peers_[i].region == home) return custody->version;
    if (peers_[i].region == replica) from_replica = custody->version;
  }
  return from_replica;
}

double PrecinctEngine::region_distance(geo::RegionId a,
                                       geo::RegionId b) const {
  const geo::Region* ra = regions_.find(a);
  const geo::Region* rb = regions_.find(b);
  if (ra == nullptr || rb == nullptr) return 0.0;
  return geo::distance(ra->center, rb->center);
}

net::Packet PrecinctEngine::make_packet(net::PacketKind kind,
                                        net::NodeId origin, geo::Key key) {
  net::Packet packet;
  packet.id = net_.next_packet_id();
  packet.kind = kind;
  packet.origin = origin;
  packet.src = origin;
  packet.origin_location = net_.position(origin);
  packet.key = key;
  packet.size_bytes = net::kHeaderBytes;
  packet.created_at = sim_.now();
  return packet;
}

bool PrecinctEngine::in_region(net::NodeId node, geo::RegionId region) {
  const geo::Region* r = regions_.find(region);
  return r != nullptr && r->extent.contains(net_.position(node));
}

std::size_t PrecinctEngine::custody_count(geo::Key key) const {
  std::size_t count = 0;
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    if (net_.is_alive(i) && peers_[i].cache.find_static(key) != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace precinct::core
