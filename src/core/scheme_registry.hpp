// SchemeRegistry — config-driven construction of protocol strategies.
//
// Maps scheme names ("precinct", "push-adaptive-pull", ...) to factories
// so a new retrieval or consistency scheme plugs in by registering
// itself — no edits to the engine, the dispatch wiring or the config
// parser.  The built-ins self-register; extensions call
// register_retrieval()/register_consistency() (e.g. from a static
// initializer) before the first engine is built.
//
// The singleton is mutex-guarded: Scenario::run_seeds constructs engines
// concurrently from worker threads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace precinct::core {

class ConsistencyScheme;
class EngineContext;
class RetrievalScheme;

class SchemeRegistry {
 public:
  using RetrievalFactory =
      std::function<std::unique_ptr<RetrievalScheme>(EngineContext&)>;
  using ConsistencyFactory =
      std::function<std::unique_ptr<ConsistencyScheme>(EngineContext&)>;

  /// The process-wide registry, with the built-in schemes registered.
  [[nodiscard]] static SchemeRegistry& instance();

  /// Register a scheme under `name`.  Throws std::logic_error if the
  /// name is already taken (names identify schemes in configs; silent
  /// replacement would repoint existing configs).
  void register_retrieval(const std::string& name, RetrievalFactory factory);
  void register_consistency(const std::string& name,
                            ConsistencyFactory factory);

  /// Construct the named scheme.  Throws std::invalid_argument naming
  /// the unknown scheme and listing what is registered.
  [[nodiscard]] std::unique_ptr<RetrievalScheme> make_retrieval(
      const std::string& name, EngineContext& ctx) const;
  [[nodiscard]] std::unique_ptr<ConsistencyScheme> make_consistency(
      const std::string& name, EngineContext& ctx) const;

  [[nodiscard]] bool has_retrieval(const std::string& name) const;
  [[nodiscard]] bool has_consistency(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> retrieval_names() const;
  [[nodiscard]] std::vector<std::string> consistency_names() const;

 private:
  SchemeRegistry();  // registers the built-ins

  mutable std::mutex mutex_;
  std::map<std::string, RetrievalFactory> retrieval_;
  std::map<std::string, ConsistencyFactory> consistency_;
};

}  // namespace precinct::core
