#include "core/custody_manager.hpp"

#include <algorithm>
#include <limits>
#include <ranges>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/consistency_scheme.hpp"
#include "core/workload_driver.hpp"

namespace precinct::core {

void CustodyManager::register_handlers(net::PacketDispatcher& dispatch) {
  dispatch.set(net::PacketKind::kKeyTransfer,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_key_transfer(self, packet);
               });
  dispatch.set(net::PacketKind::kRegionUpdate,
               [this](net::NodeId self, const net::Packet& packet) {
                 // Region-table dissemination: adopt and rebroadcast (flood
                 // with duplicate suppression, like every other
                 // network-wide flood).
                 if (ctx_.flood.mark_seen(self, packet.id)) {
                   ctx_.flood_forward(self, packet);
                 }
               });
}

void CustodyManager::place_initial_copies() {
  // Deployment routes through the same region-scoped flood the protocol
  // uses, so custody must land in the region's *flood-connected main
  // component*: pick the largest intra-region component and take its
  // member nearest the center.  This is the network's initial state, not
  // protocol traffic.
  const auto region_components = [&](geo::RegionId region) {
    std::vector<std::vector<net::NodeId>> components;
    std::vector<net::NodeId> members;
    const auto& ns = ctx_.net.node_state();
    const std::uint8_t* alive = ns.alive_data();
    const geo::RegionId* reg = ns.region_data();
    for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
      if (alive[i] && reg[i] == region) members.push_back(i);
    }
    std::vector<char> visited(members.size(), 0);
    for (std::size_t s = 0; s < members.size(); ++s) {
      if (visited[s]) continue;
      std::vector<net::NodeId> component;
      std::vector<std::size_t> stack{s};
      visited[s] = 1;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        component.push_back(members[u]);
        for (std::size_t v = 0; v < members.size(); ++v) {
          if (!visited[v] && ctx_.net.in_range(members[u], members[v])) {
            visited[v] = 1;
            stack.push_back(v);
          }
        }
      }
      components.push_back(std::move(component));
    }
    return components;
  };
  // Cache per-region placements: the main component is a property of the
  // initial topology, not of the key.
  std::unordered_map<geo::RegionId, std::vector<net::NodeId>> main_component;
  for (const geo::Region& r : ctx_.regions.regions()) {
    auto components = region_components(r.id);
    std::size_t best = 0;
    for (std::size_t i = 1; i < components.size(); ++i) {
      if (components[i].size() > components[best].size()) best = i;
    }
    main_component.emplace(
        r.id, components.empty() ? std::vector<net::NodeId>{}
                                 : std::move(components[best]));
  }
  std::vector<net::NodeId> placed;  // this key's holders so far
  for (std::size_t rank = 0; rank < ctx_.catalog.size(); ++rank) {
    const workload::DataItem& item = ctx_.catalog.item_at(rank);
    // Custody-uniqueness guard: a candidate residing in a region that
    // already hosts one of this key's holders is skipped — the
    // global-nearest fallback for an empty region must not co-locate two
    // custodians of the same key.
    const auto usable = [&](net::NodeId i) {
      for (const net::NodeId h : placed) {
        if (i == h || ctx_.peers[i].region == ctx_.peers[h].region) {
          return false;
        }
      }
      return true;
    };
    // Heterogeneous fleets: prefer fixed roadside units as custodians —
    // they never migrate, so custody placed on them needs no handoffs.
    // With no fixed class every candidate shares one tier and the choice
    // degenerates to today's nearest-to-center rule.
    const bool prefer_fixed = ctx_.config.has_fixed_nodes();
    const auto& node_state = ctx_.net.node_state();
    const auto place = [&](geo::RegionId region) -> net::NodeId {
      const geo::Region* r = ctx_.regions.find(region);
      if (r == nullptr) return net::kNoNode;
      net::NodeId best = net::kNoNode;
      int best_tier = 2;
      double best_d = std::numeric_limits<double>::infinity();
      const auto consider = [&](net::NodeId i) {
        const int tier = prefer_fixed && node_state.fixed(i) ? 0 : 1;
        const double d = geo::distance(ctx_.net.position(i), r->center);
        if (tier < best_tier || (tier == best_tier && d < best_d)) {
          best_tier = tier;
          best_d = d;
          best = i;
        }
      };
      const auto it = main_component.find(region);
      if (it != main_component.end()) {
        for (const net::NodeId i : it->second) {
          if (usable(i)) consider(i);
        }
      }
      if (best != net::kNoNode) return best;
      // Region empty (or holds only unusable peers): global nearest
      // fallback over peers whose regions are still custody-free.
      for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
        if (!ctx_.net.is_alive(i) || !usable(i)) continue;
        consider(i);
      }
      return best;
    };
    cache::CacheEntry entry;
    entry.key = item.key;
    entry.size_bytes = item.size_bytes;
    entry.version = item.version;
    placed.clear();
    for (const geo::RegionId region : ctx_.hash.key_regions(
             item.key, ctx_.regions, ctx_.config.replica_count)) {
      const net::NodeId holder = place(region);
      if (holder != net::kNoNode) {
        // The placement plan is a pure function of the initial topology,
        // so every world-sharded domain computes the identical `placed`
        // list — but only the holder's owner domain materializes the
        // copy.  Remote domains never scan static stores they don't own.
        if (ctx_.shard.owns(holder)) {
          ctx_.peers[holder].cache.put_static(entry);
        }
        placed.push_back(holder);
      }
    }
  }
}

std::size_t CustodyManager::region_population(geo::RegionId region) const {
  // Column sweep over the SoA alive/region arrays: two contiguous reads
  // per node instead of a PeerState stride plus a bounds-checked
  // liveness call.
  const auto& ns = ctx_.net.node_state();
  const std::uint8_t* alive = ns.alive_data();
  const geo::RegionId* reg = ns.region_data();
  const std::size_t n = ctx_.net.node_count();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(alive[i] != 0 && reg[i] == region);
  }
  return count;
}

std::size_t CustodyManager::custody_count(geo::Key key) const {
  std::size_t count = 0;
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    if (ctx_.net.is_alive(i) &&
        ctx_.peers[i].cache.find_static(key) != nullptr) {
      ++count;
    }
  }
  return count;
}

std::optional<geo::RegionId> CustodyManager::merge_regions(
    geo::RegionId a, geo::RegionId b, net::NodeId initiator) {
  const auto merged = ctx_.regions.merge(a, b);
  if (!merged.has_value()) return std::nullopt;
  commit_region_change(initiator);
  return merged;
}

std::optional<std::pair<geo::RegionId, geo::RegionId>>
CustodyManager::separate_region(geo::RegionId id, net::NodeId initiator) {
  const auto halves = ctx_.regions.separate(id);
  if (!halves.has_value()) return std::nullopt;
  commit_region_change(initiator);
  return halves;
}

void CustodyManager::commit_region_change(net::NodeId initiator) {
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kRegion,
                 initiator,
                 "region table now v" + std::to_string(ctx_.regions.version()) +
                     " with " + std::to_string(ctx_.regions.size()) +
                     " regions; disseminating");
  // §2.1: "the peer needs to disseminate the update to all other peers in
  // the whole network."  One network-wide flood carrying the region table
  // (16 B of center+extent per region on the air).
  net::PacketRef packet = ctx_.net.make_ref(
      ctx_.make_packet(net::PacketKind::kRegionUpdate, initiator,
                       /*key=*/ctx_.regions.version()));
  packet->mode = net::RouteMode::kNetworkFlood;
  packet->ttl = ctx_.config.network_flood_ttl;
  packet->size_bytes = net::kHeaderBytes + 16 * ctx_.regions.size();
  ctx_.flood.mark_seen(initiator, packet->id);
  ctx_.net.broadcast(std::move(packet));

  // The simulation keeps one shared table, so adoption of the new table
  // is immediate; every peer re-derives its region from it.
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    ctx_.set_region(i, ctx_.regions.containing(ctx_.net.position(i)));
  }
  // The region-diameter normalization tracks the (new) typical region.
  ctx_.refresh_region_diameter();
  relocate_displaced_custody();
}

void CustodyManager::relocate_displaced_custody() {
  // "each key in the network also needs to be relocated according to the
  // region table changes" (§2.1).  Every custodian checks its static keys
  // against the new table; keys whose region set no longer includes the
  // holder's region are transferred to their new home region (routed,
  // adopted by the first peer inside — at real message cost).
  for (net::NodeId holder = 0; holder < ctx_.net.node_count(); ++holder) {
    if (!ctx_.net.is_alive(holder)) continue;
    PeerState& p = ctx_.peers[holder];
    std::vector<geo::Key> displaced;
    std::vector<geo::Key> duplicated;
    // Collect first: transfers mutate the static store.
    for (const auto rank :
         std::views::iota(std::size_t{0}, ctx_.catalog.size())) {
      const geo::Key key = ctx_.catalog.key_of(rank);
      const cache::CacheEntry* custody = p.cache.find_static(key);
      if (custody == nullptr) continue;
      const auto regions = ctx_.hash.key_regions(key, ctx_.regions,
                                                 ctx_.config.replica_count);
      if (std::find(regions.begin(), regions.end(), p.region) ==
          regions.end()) {
        displaced.push_back(key);
      } else if (duplicate_custodian(holder, key) < holder) {
        // A merge can fold a key's home and replica custodians into one
        // region; both survive the displacement rule (the merged region
        // is in the key's region set), so the fork is resolved here: the
        // lowest-id custodian keeps the copy, the others release theirs.
        duplicated.push_back(key);
      }
    }
    for (const geo::Key key : duplicated) p.cache.erase_static(key);
    for (const geo::Key key : displaced) {
      const cache::CacheEntry entry = *p.cache.find_static(key);
      p.cache.erase_static(key);
      const geo::RegionId new_home = ctx_.hash.home_region(key, ctx_.regions);
      const geo::Region* region = ctx_.regions.find(new_home);
      if (region == nullptr) continue;
      if (ctx_.measuring) ++ctx_.metrics.custody_handoffs;
      net::Packet packet =
          ctx_.make_packet(net::PacketKind::kKeyTransfer, holder, key);
      packet.mode = net::RouteMode::kGeographic;
      packet.dest_region = new_home;
      packet.dest_location = region->center;
      packet.ttl = ctx_.config.max_route_hops;
      packet.version = entry.version;
      packet.size_bytes = net::kHeaderBytes + entry.size_bytes;
      if (ctx_.peers[holder].region == new_home) {
        // Holder is already inside the new home region: adopt locally.
        p.cache.put_static(entry);
      } else {
        ctx_.forward_geographic(holder, packet);
      }
    }
  }
}

void CustodyManager::schedule_rebalance() {
  ctx_.sim.schedule(ctx_.config.region_reconfig_interval_s,
                    [this] { maybe_rebalance_regions(); });
}

void CustodyManager::maybe_rebalance_regions() {
  // One operation per round keeps churn (and dissemination floods) low.
  const double neighbor_radius = 1.5 * ctx_.region_diameter;
  bool acted = false;
  for (const geo::Region& r : ctx_.regions.regions()) {
    const std::size_t population = region_population(r.id);
    if (population < ctx_.config.min_region_peers && ctx_.regions.size() > 1) {
      const auto neighbors = ctx_.regions.neighbors_of(r.id, neighbor_radius);
      if (!neighbors.empty()) {
        // Merge into the least-populated neighbor to even things out.
        geo::RegionId partner = neighbors.front();
        std::size_t partner_pop = region_population(partner);
        for (const geo::RegionId n : neighbors) {
          const std::size_t pop = region_population(n);
          if (pop < partner_pop) {
            partner = n;
            partner_pop = pop;
          }
        }
        const net::NodeId initiator = pick_custody_target(net::kNoNode, r.id);
        merge_regions(r.id, partner,
                      initiator == net::kNoNode ? 0 : initiator);
        acted = true;
        break;
      }
    }
    if (population > ctx_.config.max_region_peers) {
      const net::NodeId initiator = pick_custody_target(net::kNoNode, r.id);
      separate_region(r.id, initiator == net::kNoNode ? 0 : initiator);
      acted = true;
      break;
    }
  }
  (void)acted;
  schedule_rebalance();
}

net::NodeId CustodyManager::pick_custody_target(net::NodeId mover,
                                                geo::RegionId region) {
  // §2.3: prefer peers with low mobility, near the region center, with
  // cache space.  Static space is uncapped here, so the score weighs
  // proximity to the center — and heavily penalizes members with no
  // radio link *inside* the region, which region-scoped floods (and thus
  // future lookups and pushes) could not reach.
  const geo::Region* r = ctx_.regions.find(region);
  if (r == nullptr) return net::kNoNode;
  net::NodeId best = net::kNoNode;
  double best_score = std::numeric_limits<double>::infinity();
  const auto& ns = ctx_.net.node_state();
  const std::uint8_t* alive = ns.alive_data();
  const geo::RegionId* reg = ns.region_data();
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    if (i == mover || !alive[i] || reg[i] != region) continue;
    const double dist = geo::distance(ctx_.net.position(i), r->center);
    bool flood_reachable = false;
    for (const net::NodeId nb : ctx_.net.neighbors_cached(i)) {
      if (nb != mover && ctx_.peers[nb].region == region) {
        flood_reachable = true;
        break;
      }
    }
    const double score = dist + (flood_reachable ? 0.0 : 1e6);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void CustodyManager::handoff_custody(net::NodeId peer,
                                     geo::RegionId old_region) {
  PeerState& p = ctx_.peers[peer];
  if (p.cache.static_count() == 0) return;
  const net::NodeId target = pick_custody_target(peer, old_region);
  const geo::Region* region = ctx_.regions.find(old_region);
  auto entries = p.cache.take_all_static();
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kCustody,
                 peer,
                 "handing off " + std::to_string(entries.size()) +
                     " keys of region " + std::to_string(old_region) +
                     (target == net::kNoNode ? " (adoption routing)"
                                             : " to node " +
                                                   std::to_string(target)));
  if (ctx_.measuring) ctx_.metrics.custody_handoffs += entries.size();
  for (const auto& entry : entries) {
    net::Packet packet =
        ctx_.make_packet(net::PacketKind::kKeyTransfer, peer, entry.key);
    packet.mode = net::RouteMode::kGeographic;
    packet.dest_region = old_region;
    packet.ttl = ctx_.config.max_route_hops;
    packet.version = entry.version;
    packet.size_bytes = net::kHeaderBytes + entry.size_bytes;
    if (target != net::kNoNode) {
      packet.dest_node = target;
      packet.dest_location = ctx_.net.position(target);
    } else if (region != nullptr) {
      // No suitable target is known: route the key back toward the old
      // region's center and let the first peer inside adopt custody.
      packet.dest_location = region->center;
    } else {
      continue;  // region vanished (table change); replica covers (§2.4)
    }
    ctx_.forward_geographic(peer, packet);
  }
}

void CustodyManager::handle_key_transfer(net::NodeId self,
                                         const net::Packet& packet) {
  const bool addressed_to_me = self == packet.dest_node;
  const bool adoptable = packet.dest_node == net::kNoNode &&
                         ctx_.peers[self].region == packet.dest_region;
  if (!addressed_to_me && !adoptable) {
    ctx_.forward_geographic(self, packet);
    return;
  }
  // Custody-uniqueness guard: a void-recovery broadcast can fan the same
  // transfer frame out to several adopters, and an addressed target may
  // share a region with an existing custodian.  Adopting anyway would
  // fork the key's home copy, so a transfer whose key already has a live
  // custodian in this peer's region is dropped instead (the resident
  // copy stays authoritative for the region).
  if (duplicate_custodian(self, packet.key) != net::kNoNode) return;
  cache::CacheEntry entry;
  entry.key = packet.key;
  entry.size_bytes = packet.size_bytes - net::kHeaderBytes;
  entry.version = packet.version;
  ctx_.peers[self].cache.put_static(entry);
}

net::NodeId CustodyManager::duplicate_custodian(net::NodeId holder,
                                                geo::Key key) const {
  const geo::RegionId region = ctx_.peers[holder].region;
  const auto& ns = ctx_.net.node_state();
  const std::uint8_t* alive = ns.alive_data();
  const geo::RegionId* reg = ns.region_data();
  for (net::NodeId i = 0; i < ctx_.net.node_count(); ++i) {
    if (i == holder || !alive[i] || reg[i] != region) continue;
    if (ctx_.peers[i].cache.find_static(key) != nullptr) return i;
  }
  return net::kNoNode;
}

void CustodyManager::check_region(net::NodeId peer) {
  if (!ctx_.net.is_alive(peer)) return;
  const geo::RegionId now_in =
      ctx_.regions.containing(ctx_.net.position(peer));
  if (now_in != ctx_.peers[peer].region) {
    const geo::RegionId old_region = ctx_.peers[peer].region;
    ctx_.set_region(peer, now_in);
    handoff_custody(peer, old_region);  // inter-region mobility (§2.3)
  }
  const std::uint32_t generation = ctx_.peers[peer].generation;
  ctx_.sim.schedule(ctx_.config.region_check_interval_s,
                    [this, peer, generation] {
                      if (ctx_.peers[peer].generation == generation) {
                        check_region(peer);
                      }
                    });
}

void CustodyManager::fail_peer(net::NodeId peer, bool graceful) {
  if (!ctx_.net.is_alive(peer)) return;
  if (graceful) {
    // A graceful departure transfers custody first (§2.4 assumption ii)
    // and lingers long enough for the queued transfer frames to flush.
    handoff_custody(peer, ctx_.peers[peer].region);
    ctx_.sim.schedule(0.5, [this, peer] { ctx_.net.kill(peer); });
  } else {
    ctx_.net.kill(peer);
  }
}

void CustodyManager::revive_peer(net::NodeId peer) {
  if (ctx_.net.is_alive(peer)) return;
  ctx_.net.revive(peer);
  ++ctx_.peers[peer].generation;  // kill any still-scheduled old loops
  // A rejoining device starts cold: no cached data, no custody, no
  // neighbor knowledge, and a fresh region fix.
  PeerState& p = ctx_.peers[peer];
  for (const geo::Key key : p.cache.keys()) p.cache.erase(key);
  (void)p.cache.take_all_static();
  if (ctx_.beacons != nullptr) ctx_.beacons->clear_node(peer);
  ctx_.set_region(peer, ctx_.regions.containing(ctx_.net.position(peer)));
  ctx_.workload->schedule_next_request(peer);
  if (ctx_.config.updates_enabled && ctx_.consistency->generates_updates()) {
    ctx_.workload->schedule_next_update(peer);
  }
  if (ctx_.config.mobile) {
    ctx_.sim.schedule(ctx_.config.region_check_interval_s,
                      [this, peer] { check_region(peer); });
  }
  if (ctx_.config.use_beacons) ctx_.workload->schedule_beacon(peer);
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kProtocol,
                 peer, "rejoined the network");
}

}  // namespace precinct::core
