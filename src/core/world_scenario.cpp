#include "core/world_scenario.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "net/packet.hpp"
#include "net/wireless_net.hpp"

namespace precinct::core {

PrecinctConfig world_domain_config(const PrecinctConfig& world) {
  PrecinctConfig c = world;
  // Every domain is a full same-seed replica of the ONE world: identical
  // catalog/mobility/radio/channel streams are what make replicated
  // state (positions, catalog, placement plans) bit-identical across
  // domains — so, unlike tiles, the seed is deliberately NOT re-salted.
  c.shards = 1;
  c.tiles_x = c.tiles_y = 1;
  c.gateway_interval_s = 0.0;
  return c;
}

double world_validate(const PrecinctConfig& config) {
  config.validate();
  if (config.tiles_x != 1 || config.tiles_y != 1) {
    throw std::invalid_argument(
        "WorldShardedScenario: world sharding cuts ONE world; tiled cities "
        "use ShardedScenario");
  }
  if (config.dynamic_regions) {
    throw std::invalid_argument(
        "WorldShardedScenario: dynamic_regions reconfigures the region "
        "table globally and cannot be world-sharded");
  }
  if (config.gateway_interval_s > 0.0) {
    throw std::invalid_argument(
        "WorldShardedScenario: gateway traffic belongs to tiled worlds; a "
        "world-sharded run carries real radio frames across the cut");
  }
  if (config.gateway_latency_s != 0.0) {
    throw std::invalid_argument(
        "WorldShardedScenario: gateway_latency has no effect here — the "
        "conservative lookahead is derived from the radio MAC/propagation "
        "timing; set gateway_latency = 0");
  }
  const double lookahead = net::WirelessNet::world_lookahead(config.wireless);
  if (!(lookahead > 0.0)) {
    throw std::invalid_argument(
        "WorldShardedScenario: derived lookahead (mac_overhead_s + "
        "propagation_s) must be > 0 — a zero-latency radio admits no "
        "conservative window");
  }
  return lookahead;
}

std::vector<std::uint32_t> world_node_owners(const PrecinctConfig& config,
                                             net::WirelessNet& reference) {
  std::vector<std::uint32_t> owner(config.n_nodes);
  const double min_x = config.area.min.x;
  const double width = config.area.width();
  for (net::NodeId i = 0; i < config.n_nodes; ++i) {
    owner[i] = geo::world_column_of(reference.position(i).x, min_x, width,
                                    config.regions_x);
  }
  return owner;
}

/// Routes WorldCoupler posts into the executor's mailboxes and keeps the
/// conservation counters.  Every counter cell is cache-line padded and
/// single-writer: posted_[src][dst] is written only by the worker
/// computing domain src, processed_[dst][src] only by the worker
/// computing dst (the callback runs on dst's simulator).  Totals are read
/// after run_until() has joined its cohort.
class WorldShardedScenario::Coupler final : public net::WorldCoupler {
 public:
  Coupler(WorldShardedScenario& world, std::uint32_t n_domains,
          double horizon)
      : world_(world),
        n_(n_domains),
        horizon_(horizon),
        posted_(static_cast<std::size_t>(n_domains) * n_domains),
        processed_(static_cast<std::size_t>(n_domains) * n_domains) {}

  void post_frame(std::uint32_t src_domain, std::uint32_t dst_domain,
                  double due, const net::Packet& packet, bool is_unicast,
                  net::NodeId next_hop) override {
    PostCell& cell = posted_[idx(src_domain, dst_domain)];
    ++cell.frames;
    if (beyond_horizon(due)) ++cell.frames_beyond;
    world_.exec_->post(
        src_domain, dst_domain, due,
        [this, src_domain, dst_domain, packet, is_unicast, next_hop] {
          ++processed_[idx(dst_domain, src_domain)].frames;
          net::WirelessNet& net = world_.domains_[dst_domain]->network();
          if (is_unicast) {
            net.deliver_remote_unicast(packet, next_hop);
          } else {
            net.deliver_remote_broadcast(packet);
          }
        });
  }

  void post_liveness(std::uint32_t src_domain, net::NodeId node, bool alive,
                     double now) override {
    post_delta(src_domain, now,
               [this, node, alive](std::uint32_t dst) {
                 world_.domains_[dst]->network().apply_remote_liveness(node,
                                                                       alive);
               });
  }

  void post_region(std::uint32_t src_domain, net::NodeId node,
                   geo::RegionId region, double now) override {
    post_delta(src_domain, now,
               [this, node, region](std::uint32_t dst) {
                 world_.domains_[dst]->network().apply_remote_region(node,
                                                                     region);
               });
  }

  void post_catalog_update(std::uint32_t src_domain, geo::Key key,
                           std::uint64_t version, double now) override {
    // Replicas merge monotonically; `now` (the write instant in the
    // updater's domain) becomes the replica's last_update_s, so every
    // catalog agrees on when the version was written.
    post_delta(src_domain, now,
               [this, key, version, now](std::uint32_t dst) {
                 world_.domains_[dst]->catalog().observe_update(key, version,
                                                                now);
               });
  }

  /// Fold the per-cell counters into the run's metrics (call only after
  /// the final run_until has returned — single-threaded again).
  void accumulate(WorldShardedMetrics& m) const {
    for (const PostCell& c : posted_) {
      m.frames_posted += c.frames;
      m.frames_beyond_horizon += c.frames_beyond;
      m.deltas_posted += c.deltas;
      m.deltas_beyond_horizon += c.deltas_beyond;
    }
    for (const ProcCell& c : processed_) {
      m.frames_processed += c.frames;
      m.deltas_processed += c.deltas;
    }
  }

 private:
  struct alignas(64) PostCell {
    std::uint64_t frames = 0;
    std::uint64_t frames_beyond = 0;
    std::uint64_t deltas = 0;
    std::uint64_t deltas_beyond = 0;
  };
  struct alignas(64) ProcCell {
    std::uint64_t frames = 0;
    std::uint64_t deltas = 0;
  };

  [[nodiscard]] std::size_t idx(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }

  /// True when a message due then will never execute: either it is due
  /// after the run horizon, or it is due exactly at the horizon but was
  /// posted during the final window — the executor merges that window's
  /// mail after its compute phase, and no compute phase follows.
  [[nodiscard]] bool beyond_horizon(double due) const {
    return due > horizon_ ||
           (due == horizon_ && world_.exec_->window_end() >= horizon_);
  }

  /// One halo delta fans out to every other domain at the current window
  /// boundary (the earliest due the conservative bound admits; while the
  /// executor is idle that is `now` itself, so init-time deltas merge
  /// before the first window).
  template <typename ApplyAt>
  void post_delta(std::uint32_t src, double now, ApplyAt apply_at) {
    const double due = std::max(now, world_.exec_->window_end());
    const bool beyond = beyond_horizon(due);
    for (std::uint32_t dst = 0; dst < n_; ++dst) {
      if (dst == src) continue;
      PostCell& cell = posted_[idx(src, dst)];
      ++cell.deltas;
      if (beyond) ++cell.deltas_beyond;
      world_.exec_->post(src, dst, due, [this, src, dst, apply_at] {
        ++processed_[idx(dst, src)].deltas;
        apply_at(dst);
      });
    }
  }

  WorldShardedScenario& world_;
  std::uint32_t n_;
  double horizon_;
  std::vector<PostCell> posted_;     // src * n + dst
  std::vector<ProcCell> processed_;  // dst * n + src
};

WorldShardedScenario::WorldShardedScenario(const PrecinctConfig& config)
    : config_((config.validate(), config)),
      partition_(geo::partition_grid(config.regions_x, 1, config.shards)) {
  lookahead_s_ = world_validate(config_);

  const auto n_domains = static_cast<std::uint32_t>(partition_.domains());
  domains_.reserve(n_domains);
  for (std::uint32_t d = 0; d < n_domains; ++d) {
    domains_.push_back(
        std::make_unique<Scenario>(world_domain_config(config_)));
  }

  // Ownership: the region column of each node's t=0 position.  Replica 0
  // answers for everyone — all replicas share the mobility streams, so
  // every domain would compute the identical map.
  owner_ = world_node_owners(config_, domains_[0]->network());

  coupler_ =
      std::make_unique<Coupler>(*this, n_domains, config_.end_time_s());

  std::vector<sim::Simulator*> sims;
  sims.reserve(n_domains);
  for (const auto& d : domains_) sims.push_back(&d->simulator());
  sim::ShardExecutor::Options opts;
  opts.n_shards = partition_.n_shards;
  opts.lookahead_s = lookahead_s_;
  exec_ = std::make_unique<sim::ShardExecutor>(std::move(sims),
                                               partition_.shard_of, opts);

  for (std::uint32_t d = 0; d < n_domains; ++d) {
    net::WorldShardBinding binding;
    binding.domain = d;
    binding.n_domains = n_domains;
    binding.owner = owner_.data();
    binding.coupler = coupler_.get();
    domains_[d]->network().bind_world_shard(binding);
    ShardView view;
    view.domain = d;
    view.n_domains = n_domains;
    view.owner = owner_.data();
    domains_[d]->engine().set_shard_view(view);
  }
}

WorldShardedScenario::~WorldShardedScenario() = default;

WorldShardedMetrics WorldShardedScenario::run() {
  if (ran_) throw std::logic_error("WorldShardedScenario::run: already ran");
  ran_ = true;
  for (const auto& d : domains_) d->engine().initialize();
  // Warm-up and measurement as separate executor runs: the phase boundary
  // is an exact window boundary for every worker count, so flipping the
  // measurement switch between them is K-invariant.
  exec_->run_until(config_.warmup_s);
  for (const auto& d : domains_) d->engine().start_measurement();
  exec_->run_until(config_.end_time_s());

  WorldShardedMetrics out;
  out.domains = static_cast<std::uint32_t>(domains_.size());
  out.shards = partition_.n_shards;
  out.lookahead_s = lookahead_s_;
  out.per_domain.reserve(domains_.size());
  for (const auto& d : domains_) {
    out.per_domain.push_back(d->engine().finalize());
  }
  out.aggregate = merge_metrics(out.per_domain);
  out.windows = exec_->windows();
  out.messages_merged = exec_->messages_merged();
  coupler_->accumulate(out);

  // Cross-domain conservation audit: every marshalled frame and halo
  // delta must have executed at its destination, except the ones whose
  // due lies beyond the run horizon.  A leak here means a mailbox,
  // merge-order or ownership bug — fail loudly, never publish metrics.
  const std::uint64_t frames_expected =
      out.frames_posted - out.frames_beyond_horizon;
  const std::uint64_t deltas_expected =
      out.deltas_posted - out.deltas_beyond_horizon;
  if (out.frames_processed != frames_expected ||
      out.deltas_processed != deltas_expected) {
    throw std::logic_error(
        "WorldShardedScenario: cross-domain conservation violated: frames " +
        std::to_string(out.frames_processed) + "/" +
        std::to_string(frames_expected) + ", deltas " +
        std::to_string(out.deltas_processed) + "/" +
        std::to_string(deltas_expected));
  }
  return out;
}

std::string world_fingerprint(const WorldShardedMetrics& m) {
  std::string out;
  char line[96];
  const auto put = [&](const char* key, const char* fmt, auto value) {
    out += key;
    std::snprintf(line, sizeof(line), fmt, value);
    out += line;
    out += '\n';
  };
  // Deliberately excludes m.shards: it encodes how many workers did the
  // work, and the whole point of this string is that nothing else may
  // depend on that.
  put("domains=", "%" PRIu32, m.domains);
  put("lookahead=", "%a", m.lookahead_s);
  put("frames_posted=", "%" PRIu64, m.frames_posted);
  put("frames_processed=", "%" PRIu64, m.frames_processed);
  put("frames_beyond_horizon=", "%" PRIu64, m.frames_beyond_horizon);
  put("deltas_posted=", "%" PRIu64, m.deltas_posted);
  put("deltas_processed=", "%" PRIu64, m.deltas_processed);
  put("deltas_beyond_horizon=", "%" PRIu64, m.deltas_beyond_horizon);
  put("windows=", "%" PRIu64, m.windows);
  put("messages_merged=", "%" PRIu64, m.messages_merged);
  out += "--- aggregate ---\n";
  out += fingerprint(m.aggregate);
  for (std::size_t d = 0; d < m.per_domain.size(); ++d) {
    out += "--- domain ";
    std::snprintf(line, sizeof(line), "%zu", d);
    out += line;
    out += " ---\n";
    out += fingerprint(m.per_domain[d]);
  }
  return out;
}

WorldShardedMetrics run_world_scenario(const PrecinctConfig& config) {
  WorldShardedScenario scenario(config);
  return scenario.run();
}

}  // namespace precinct::core
