#include "core/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/config.hpp"

namespace precinct::core {

const char* to_string(RetrievalKind scheme) noexcept {
  switch (scheme) {
    case RetrievalKind::kPrecinct: return "precinct";
    case RetrievalKind::kFlooding: return "flooding";
    case RetrievalKind::kExpandingRing: return "expanding-ring";
  }
  return "unknown";
}

std::string fingerprint(const Metrics& m) {
  std::string out;
  char line[96];
  const auto put = [&](const char* key, const char* fmt, auto value) {
    out += key;
    std::snprintf(line, sizeof(line), fmt, value);
    out += line;
    out += '\n';
  };
  put("requests_issued=", "%" PRIu64, m.requests_issued);
  put("requests_completed=", "%" PRIu64, m.requests_completed);
  put("requests_failed=", "%" PRIu64, m.requests_failed);
  put("own_cache_hits=", "%" PRIu64, m.own_cache_hits);
  put("regional_hits=", "%" PRIu64, m.regional_hits);
  put("en_route_hits=", "%" PRIu64, m.en_route_hits);
  put("home_region_hits=", "%" PRIu64, m.home_region_hits);
  put("replica_hits=", "%" PRIu64, m.replica_hits);
  put("latency_count=", "%zu", m.latency_s.count());
  put("latency_sum=", "%a", m.latency_s.sum());
  put("latency_min=", "%a", m.latency_s.min());
  put("latency_max=", "%a", m.latency_s.max());
  put("bytes_requested=", "%" PRIu64, m.bytes_requested);
  put("bytes_hit=", "%" PRIu64, m.bytes_hit);
  put("updates_initiated=", "%" PRIu64, m.updates_initiated);
  put("cache_served_valid=", "%" PRIu64, m.cache_served_valid);
  put("false_hits=", "%" PRIu64, m.false_hits);
  put("polls_sent=", "%" PRIu64, m.polls_sent);
  put("consistency_messages=", "%" PRIu64, m.consistency_messages);
  put("energy_total_mj=", "%a", m.energy_total_mj);
  put("energy_broadcast_mj=", "%a", m.energy_broadcast_mj);
  put("energy_p2p_mj=", "%a", m.energy_p2p_mj);
  put("energy_channel_discard_mj=", "%a", m.energy_channel_discard_mj);
  put("messages_sent=", "%" PRIu64, m.messages_sent);
  put("bytes_sent=", "%" PRIu64, m.bytes_sent);
  put("frames_lost=", "%" PRIu64, m.frames_lost);
  put("frames_dropped_by_channel=", "%" PRIu64, m.frames_dropped_by_channel);
  put("retransmissions=", "%" PRIu64, m.retransmissions);
  put("duplicate_responses_suppressed=", "%" PRIu64,
      m.duplicate_responses_suppressed);
  put("custody_handoffs=", "%" PRIu64, m.custody_handoffs);
  put("events_executed=", "%" PRIu64, m.events_executed);
  return out;
}

void Metrics::record_hit(HitClass hit_class) noexcept {
  switch (hit_class) {
    case HitClass::kOwnCache: ++own_cache_hits; break;
    case HitClass::kRegionalCache: ++regional_hits; break;
    case HitClass::kEnRoute: ++en_route_hits; break;
    case HitClass::kHomeRegion: ++home_region_hits; break;
    case HitClass::kReplicaRegion: ++replica_hits; break;
    case HitClass::kFailed: ++requests_failed; break;
  }
}

}  // namespace precinct::core
