#include "core/metrics.hpp"

#include "core/config.hpp"

namespace precinct::core {

const char* to_string(RetrievalKind scheme) noexcept {
  switch (scheme) {
    case RetrievalKind::kPrecinct: return "precinct";
    case RetrievalKind::kFlooding: return "flooding";
    case RetrievalKind::kExpandingRing: return "expanding-ring";
  }
  return "unknown";
}

void Metrics::record_hit(HitClass hit_class) noexcept {
  switch (hit_class) {
    case HitClass::kOwnCache: ++own_cache_hits; break;
    case HitClass::kRegionalCache: ++regional_hits; break;
    case HitClass::kEnRoute: ++en_route_hits; break;
    case HitClass::kHomeRegion: ++home_region_hits; break;
    case HitClass::kReplicaRegion: ++replica_hits; break;
    case HitClass::kFailed: ++requests_failed; break;
  }
}

}  // namespace precinct::core
