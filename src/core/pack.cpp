#include "core/pack.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "core/config_io.hpp"

#ifndef PRECINCT_PACKS_SOURCE_DIR
#define PRECINCT_PACKS_SOURCE_DIR ""
#endif

namespace precinct::core {

namespace fs = std::filesystem;

std::string pack_dir() {
  std::vector<std::string> candidates;
  if (const char* env = std::getenv("PRECINCT_PACK_DIR")) {
    candidates.emplace_back(env);
  }
  candidates.emplace_back("examples/packs");
  candidates.emplace_back("../examples/packs");
  candidates.emplace_back("../../examples/packs");
  if (PRECINCT_PACKS_SOURCE_DIR[0] != '\0') {
    candidates.emplace_back(PRECINCT_PACKS_SOURCE_DIR);
  }
  for (const std::string& dir : candidates) {
    std::error_code ec;
    if (fs::is_directory(dir, ec)) return dir;
  }
  throw std::runtime_error(
      "scenario packs: no pack directory found (set PRECINCT_PACK_DIR or "
      "run from the repository root)");
}

std::vector<std::string> list_packs() {
  std::vector<std::string> names;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(pack_dir())) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".conf") names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

ScenarioPack load_pack(const std::string& name) {
  const std::string dir = pack_dir();
  const fs::path conf = fs::path(dir) / (name + ".conf");
  std::error_code ec;
  if (!fs::is_regular_file(conf, ec)) {
    std::string msg = "unknown scenario pack '" + name + "'; available:";
    const std::vector<std::string> names = list_packs();
    if (names.empty()) msg += " (none installed)";
    for (const std::string& n : names) msg += " " + n;
    throw std::invalid_argument(msg);
  }
  ScenarioPack pack;
  pack.name = name;
  pack.config_path = conf.string();
  pack.golden_path = (fs::path(dir) / (name + ".golden")).string();
  pack.config = config_from_file(pack.config_path);
  pack.config.validate();
  return pack;
}

PrecinctConfig reduced_for_test(const PrecinctConfig& config) {
  PrecinctConfig reduced = config;
  reduced.warmup_s = std::min(reduced.warmup_s, 10.0);
  reduced.measure_s = std::min(reduced.measure_s, 30.0);
  return reduced;
}

PackGolden parse_golden(const std::string& text) {
  PackGolden golden;
  std::string* section = nullptr;
  bool saw_full = false;
  bool saw_reduced = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == "[full]") {
      section = &golden.full;
      saw_full = true;
      continue;
    }
    if (line == "[reduced]") {
      section = &golden.reduced;
      saw_reduced = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (section == nullptr) {
      throw std::invalid_argument(
          "pack golden: content before the first [full]/[reduced] section");
    }
    *section += line;
    *section += '\n';
  }
  if (!saw_full || !saw_reduced) {
    throw std::invalid_argument(
        "pack golden: need both a [full] and a [reduced] section");
  }
  return golden;
}

std::string render_golden(const std::string& pack_name,
                          const PackGolden& golden) {
  std::string out = "# golden metrics for scenario pack '" + pack_name +
                    "'\n# regenerate deliberately with: precinct_sim --pack " +
                    pack_name + " --write-golden\n[full]\n";
  out += golden.full;
  out += "[reduced]\n";
  out += golden.reduced;
  return out;
}

}  // namespace precinct::core
