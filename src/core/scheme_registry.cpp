#include "core/scheme_registry.hpp"

#include <stdexcept>

#include "core/consistency_scheme.hpp"
#include "core/retrieval_baselines.hpp"
#include "core/retrieval_precinct.hpp"
#include "core/retrieval_scheme.hpp"

namespace precinct::core {

namespace {

template <typename Map>
std::string known_names(const Map& map) {
  std::string names;
  for (const auto& [name, factory] : map) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

}  // namespace

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry registry;
  return registry;
}

SchemeRegistry::SchemeRegistry() {
  retrieval_.emplace("precinct", [](EngineContext& ctx) {
    return std::make_unique<PrecinctLookup>(ctx);
  });
  retrieval_.emplace("flooding", [](EngineContext& ctx) {
    return std::make_unique<FloodingRetrieval>(ctx);
  });
  retrieval_.emplace("expanding-ring", [](EngineContext& ctx) {
    return std::make_unique<ExpandingRingRetrieval>(ctx);
  });
  consistency_.emplace("none", [](EngineContext& ctx) {
    return std::make_unique<NoConsistency>(ctx);
  });
  consistency_.emplace("plain-push", [](EngineContext& ctx) {
    return std::make_unique<PlainPush>(ctx);
  });
  consistency_.emplace("pull-every-time", [](EngineContext& ctx) {
    return std::make_unique<PullEveryTime>(ctx);
  });
  consistency_.emplace("push-adaptive-pull", [](EngineContext& ctx) {
    return std::make_unique<PushAdaptivePull>(ctx);
  });
}

void SchemeRegistry::register_retrieval(const std::string& name,
                                        RetrievalFactory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!retrieval_.emplace(name, std::move(factory)).second) {
    throw std::logic_error("SchemeRegistry: retrieval scheme \"" + name +
                           "\" is already registered");
  }
}

void SchemeRegistry::register_consistency(const std::string& name,
                                          ConsistencyFactory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!consistency_.emplace(name, std::move(factory)).second) {
    throw std::logic_error("SchemeRegistry: consistency scheme \"" + name +
                           "\" is already registered");
  }
}

std::unique_ptr<RetrievalScheme> SchemeRegistry::make_retrieval(
    const std::string& name, EngineContext& ctx) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = retrieval_.find(name);
  if (it == retrieval_.end()) {
    throw std::invalid_argument("unknown retrieval scheme \"" + name +
                                "\" (registered: " + known_names(retrieval_) +
                                ")");
  }
  return it->second(ctx);
}

std::unique_ptr<ConsistencyScheme> SchemeRegistry::make_consistency(
    const std::string& name, EngineContext& ctx) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = consistency_.find(name);
  if (it == consistency_.end()) {
    throw std::invalid_argument(
        "unknown consistency scheme \"" + name +
        "\" (registered: " + known_names(consistency_) + ")");
  }
  return it->second(ctx);
}

bool SchemeRegistry::has_retrieval(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retrieval_.count(name) != 0;
}

bool SchemeRegistry::has_consistency(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return consistency_.count(name) != 0;
}

std::vector<std::string> SchemeRegistry::retrieval_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(retrieval_.size());
  for (const auto& [name, factory] : retrieval_) names.push_back(name);
  return names;
}

std::vector<std::string> SchemeRegistry::consistency_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(consistency_.size());
  for (const auto& [name, factory] : consistency_) names.push_back(name);
  return names;
}

}  // namespace precinct::core
