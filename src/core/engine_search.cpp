// PrecinctEngine — data search (paper §2.2, §3): the request lifecycle
// from issue through regional probe, home/replica lookup, responder-side
// validation and completion, plus the flooding/expanding-ring baselines
// and the geographic forwarding primitives.
#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ranges>

namespace precinct::core {

void PrecinctEngine::issue_request(net::NodeId peer, geo::Key key) {
  issue_request_internal(peer, key, /*prefetch=*/false);
}

void PrecinctEngine::issue_prefetch(net::NodeId peer, geo::Key key) {
  issue_request_internal(peer, key, /*prefetch=*/true);
}

void PrecinctEngine::issue_request_internal(net::NodeId peer, geo::Key key,
                                            bool prefetch) {
  const std::uint64_t request_id = next_request_id_++;
  Pending pending;
  pending.key = key;
  pending.requester = peer;
  pending.created_at = sim_.now();
  pending.prefetch = prefetch;
  pending.measured = measuring_ && !prefetch;
  pending_.emplace(request_id, pending);

  if (pending.measured) {
    ++metrics_.requests_issued;
    metrics_.bytes_requested += catalog_.item(key).size_bytes;
  }
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kProtocol, peer,
                 "request #" + std::to_string(request_id) + " for key " +
                     std::to_string(key));

  const Copy copy = find_copy(peer, key);
  if (copy.entry != nullptr &&
      (copy.is_custody || !copy.entry->invalidated)) {
    serve_from_own_cache(peer, request_id, *copy.entry, copy.is_custody);
    return;
  }
  switch (config_.retrieval) {
    case RetrievalScheme::kPrecinct:
      // With no dynamic cache there is no cumulative cache to probe (the
      // paper's §5.2.2 analysis assumes exactly this); go straight to the
      // home region.  Keys homed in the requester's own region are still
      // found: the remote lookup floods locally when already inside.
      if (peers_[peer].cache.capacity_bytes() == 0) {
        start_remote_lookup(request_id, /*replica=*/false);
      } else {
        start_regional_probe(request_id);
      }
      break;
    case RetrievalScheme::kFlooding:
    case RetrievalScheme::kExpandingRing:
      start_baseline_flood(request_id);
      break;
  }
}

bool PrecinctEngine::scheme_needs_validation(double ttr_remaining_s) const {
  switch (config_.consistency) {
    case consistency::Mode::kNone:
    case consistency::Mode::kPlainPush:
      return false;  // pushed invalidations are the only staleness signal
    case consistency::Mode::kPullEveryTime:
      return true;  // validate on every cached serve
    case consistency::Mode::kPushAdaptivePull:
      return ttr_remaining_s <= 0.0;  // poll only after the TTR lapses
  }
  return false;
}

void PrecinctEngine::serve_from_own_cache(net::NodeId peer,
                                          std::uint64_t request_id,
                                          const cache::CacheEntry& entry,
                                          bool is_custody) {
  Pending& pending = pending_.at(request_id);
  const double ttr_remaining = entry.ttr_expiry_s - sim_.now();
  // Custody copies are the owner's copy: never polled.
  if (!is_custody && scheme_needs_validation(ttr_remaining)) {
    pending.has_candidate = true;
    pending.candidate_own = true;
    pending.candidate_class = HitClass::kOwnCache;
    pending.candidate_version = entry.version;
    pending.candidate_bytes = entry.size_bytes;
    pending.candidate_region = peers_[peer].region;
    start_validation(request_id);
    return;
  }
  complete_request(request_id, HitClass::kOwnCache, entry.version,
                   entry.size_bytes, ttr_remaining, peers_[peer].region,
                   /*validated=*/is_custody);
}

void PrecinctEngine::start_regional_probe(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  pending.phase = Phase::kRegional;
  pending.probed_own_region = true;
  const net::NodeId peer = pending.requester;

  net::Packet packet = make_packet(net::PacketKind::kRequest, peer,
                                   pending.key);
  packet.mode = net::RouteMode::kRegionFlood;
  packet.dest_region = peers_[peer].region;
  packet.ttl = config_.region_flood_ttl;
  packet.request_id = request_id;
  flood_.mark_seen(peer, packet.id);
  net_.broadcast(packet);

  pending.timeout = sim_.schedule(config_.regional_timeout_s, [this, request_id] {
    on_timeout(request_id, Phase::kRegional);
  });
}

void PrecinctEngine::start_remote_lookup(std::uint64_t request_id,
                                         std::size_t lookup_index) {
  Pending& pending = pending_.at(request_id);
  const net::NodeId peer = pending.requester;
  const auto targets =
      hash_.key_regions(pending.key, regions_, config_.replica_count);
  // Skip regions the regional probe already flooded (the requester's own
  // region) and any that vanished from the table.
  while (lookup_index < targets.size() &&
         ((pending.probed_own_region &&
           targets[lookup_index] == peers_[peer].region) ||
          regions_.find(targets[lookup_index]) == nullptr)) {
    ++lookup_index;
  }
  if (lookup_index >= targets.size()) {
    fail_request(request_id);
    return;
  }
  pending.lookup_index = lookup_index;
  pending.phase = lookup_index == 0 ? Phase::kHome : Phase::kReplica;
  const geo::RegionId target = targets[lookup_index];
  const geo::Region* region = regions_.find(target);

  net::Packet packet = make_packet(net::PacketKind::kRequest, peer,
                                   pending.key);
  packet.dest_region = target;
  packet.dest_location = region->center;
  packet.request_id = request_id;
  if (peers_[peer].region == target) {
    // Already inside the target region: the requester itself is the
    // broadcast point for the localized flood (§2.2).
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = config_.region_flood_ttl;
    flood_.mark_seen(peer, packet.id);
    net_.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = config_.max_route_hops;
    forward_geographic(peer, packet);
  }

  const Phase phase = pending.phase;
  pending.timeout =
      sim_.schedule(config_.remote_timeout_s, [this, request_id, phase] {
        on_timeout(request_id, phase);
      });
}

void PrecinctEngine::start_baseline_flood(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  const net::NodeId peer = pending.requester;
  int ttl = config_.network_flood_ttl;
  double wait = config_.remote_timeout_s;
  if (config_.retrieval == RetrievalScheme::kExpandingRing) {
    pending.phase = Phase::kRing;
    const auto ttls = routing::expanding_ring_ttls(config_.ring);
    if (pending.ring_index >= static_cast<int>(ttls.size())) {
      fail_request(request_id);
      return;
    }
    ttl = ttls[static_cast<std::size_t>(pending.ring_index)];
    wait = config_.ring.retry_wait_s;
  } else {
    pending.phase = Phase::kFlood;
  }
  net::Packet packet = make_packet(net::PacketKind::kRequest, peer,
                                   pending.key);
  packet.mode = net::RouteMode::kNetworkFlood;
  packet.ttl = ttl;
  packet.request_id = request_id;
  flood_.mark_seen(peer, packet.id);
  net_.broadcast(packet);

  pending.timeout = sim_.schedule(wait, [this, request_id] {
    on_timeout(request_id, pending_.count(request_id)
                               ? pending_.at(request_id).phase
                               : Phase::kFlood);
  });
}

bool PrecinctEngine::send_poll(net::NodeId from, geo::Key key,
                               std::uint64_t correlation_id,
                               std::uint64_t known_version) {
  const geo::RegionId home = hash_.home_region(key, regions_);
  const geo::Region* region = regions_.find(home);
  if (region == nullptr) return false;
  if (measuring_) ++metrics_.polls_sent;
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kConsistency, from,
                 "poll home region for key " + std::to_string(key));

  net::Packet packet = make_packet(net::PacketKind::kPoll, from, key);
  packet.dest_region = home;
  packet.dest_location = region->center;
  packet.request_id = correlation_id;
  packet.version = known_version;
  if (peers_[from].region == home) {
    // Already inside the home region: poll via a localized flood.
    packet.mode = net::RouteMode::kRegionFlood;
    packet.ttl = config_.region_flood_ttl;
    flood_.mark_seen(from, packet.id);
    net_.broadcast(packet);
  } else {
    packet.mode = net::RouteMode::kGeographic;
    packet.ttl = config_.max_route_hops;
    forward_geographic(from, packet);
  }
  return true;
}

void PrecinctEngine::start_validation(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  pending.phase = Phase::kValidate;
  if (!send_poll(pending.requester, pending.key, request_id,
                 pending.candidate_version)) {
    // No home region to poll; serve the candidate as-is.
    complete_request(request_id, pending.candidate_class,
                     pending.candidate_version, pending.candidate_bytes, 0.0,
                     pending.candidate_region, /*validated=*/false);
    return;
  }
  pending.timeout = sim_.schedule(config_.remote_timeout_s, [this, request_id] {
    on_timeout(request_id, Phase::kValidate);
  });
}

void PrecinctEngine::serve_from_copy(net::NodeId self,
                                     const net::Packet& request,
                                     const cache::CacheEntry& entry,
                                     HitClass hit_class) {
  // Fig 3's pull check runs at the peer holding the copy: validate an
  // expired/unvalidated copy against the home region before serving, so
  // the refreshed TTR benefits every later request hitting this copy.
  const double ttr_remaining = entry.ttr_expiry_s - sim_.now();
  if (!scheme_needs_validation(ttr_remaining)) {
    send_response(self, request, entry, hit_class);
    return;
  }
  const std::uint64_t poll_id = next_request_id_++;
  if (!send_poll(self, entry.key, poll_id, entry.version)) {
    send_response(self, request, entry, hit_class);
    return;
  }
  ResponderPoll poll;
  poll.responder = self;
  poll.request = request;
  poll.hit_class = hit_class;
  poll.timeout = sim_.schedule(config_.remote_timeout_s, [this, poll_id] {
    // Home region unreachable: stay silent — the requester's own phase
    // timeout escalates the search instead of us serving unvalidated data.
    responder_polls_.erase(poll_id);
  });
  responder_polls_.emplace(poll_id, poll);
}

void PrecinctEngine::finish_responder_poll(std::uint64_t poll_id) {
  const auto it = responder_polls_.find(poll_id);
  if (it == responder_polls_.end()) return;
  const ResponderPoll poll = it->second;
  responder_polls_.erase(it);
  sim_.cancel(poll.timeout);
  // Serve whatever the copy holds now (the poll reply refreshed it); the
  // copy may also have been evicted or invalidated meanwhile.
  const Copy copy = find_copy(poll.responder, poll.request.key);
  if (copy.entry != nullptr && !copy.entry->invalidated) {
    send_response(poll.responder, poll.request, *copy.entry, poll.hit_class);
  }
}

void PrecinctEngine::on_timeout(std::uint64_t request_id, Phase phase) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.phase != phase) return;
  switch (phase) {
    case Phase::kRegional:
      // Home lookup next; start_remote_lookup itself skips regions the
      // probe already flooded.
      start_remote_lookup(request_id, 0);
      break;
    case Phase::kHome:
    case Phase::kReplica:
      // §2.4 fallback chain: try the next replica region (fails when
      // exhausted).
      start_remote_lookup(request_id, it->second.lookup_index + 1);
      break;
    case Phase::kValidate: {
      // The home region did not answer the poll: treat the copy as a miss
      // and fetch through the normal search path (never serve a copy the
      // scheme demanded be validated).
      Pending& p = it->second;
      p.has_candidate = false;
      if (config_.retrieval == RetrievalScheme::kPrecinct) {
        start_regional_probe(request_id);
      } else {
        start_baseline_flood(request_id);
      }
      break;
    }
    case Phase::kRing: {
      Pending& p = it->second;
      ++p.ring_index;
      start_baseline_flood(request_id);
      break;
    }
    case Phase::kFlood:
      fail_request(request_id);
      break;
  }
}

void PrecinctEngine::complete_request(std::uint64_t request_id,
                                      HitClass hit_class,
                                      std::uint64_t version,
                                      std::size_t item_bytes,
                                      double ttr_remaining_s,
                                      geo::RegionId responder_region,
                                      bool validated) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // duplicate response
  Pending pending = it->second;
  pending_.erase(it);
  sim_.cancel(pending.timeout);

  const net::NodeId peer = pending.requester;
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kProtocol, peer,
                 "request #" + std::to_string(request_id) +
                     " served (class " +
                     std::to_string(static_cast<int>(hit_class)) + ", v" +
                     std::to_string(version) + ")");
  const double latency =
      hit_class == HitClass::kOwnCache && pending.phase != Phase::kValidate
          ? kLocalServeLatency
          : std::max(kLocalServeLatency, sim_.now() - pending.created_at);

  if (pending.measured) {
    ++metrics_.requests_completed;
    metrics_.record_hit(hit_class);
    metrics_.latency_s.add(latency);
    metrics_.latency_q.add(latency);
    metrics_.latency_by_class[static_cast<std::size_t>(hit_class)].add(
        latency);
    if (hit_class == HitClass::kOwnCache ||
        hit_class == HitClass::kRegionalCache) {
      metrics_.bytes_hit += item_bytes;
    }
    // False-hit accounting (Fig 7): every completed request is a hit
    // "shown as valid"; it is false when the served version is older than
    // the owner's (home custodian's) current copy.
    ++metrics_.cache_served_valid;
    if (const auto owner_version = authoritative_version(pending.key);
        owner_version.has_value() && version < *owner_version) {
      ++metrics_.false_hits;
    }
  }

  // Touch / admit the copy (cache admission control, §3.2: cache only what
  // originated outside the requester's region).
  Peer& p = peers_[peer];
  const double reg_dst =
      region_distance(p.region, hash_.home_region(pending.key, regions_)) /
      region_diameter_;
  if (p.cache.find(pending.key) != nullptr) {
    p.cache.touch(pending.key, sim_.now(), reg_dst);
    p.cache.refresh(pending.key, version,
                    sim_.now() + std::max(0.0, ttr_remaining_s));
  } else if (hit_class != HitClass::kOwnCache &&
             responder_region != p.region &&
             p.cache.capacity_bytes() > 0) {
    cache::CacheEntry entry;
    entry.key = pending.key;
    entry.size_bytes = item_bytes;
    entry.version = version;
    entry.access_count = 1.0;
    entry.region_distance = reg_dst;
    entry.ttr_expiry_s = sim_.now() + std::max(0.0, ttr_remaining_s);
    entry.fetched_at_s = entry.last_access_s = sim_.now();
    const auto result = p.cache.insert(entry);
    if (tracer_ != nullptr &&
        tracer_->enabled(sim::TraceCategory::kCache)) {
      std::string msg = result.admitted ? "cached key " : "rejected key ";
      msg += std::to_string(pending.key);
      for (const geo::Key victim : result.evicted) {
        msg += ", evicted " + std::to_string(victim);
      }
      tracer_->emit(sim_.now(), sim::TraceCategory::kCache, peer,
                    std::move(msg));
    }
  }
  (void)validated;

  // Extension: after a real remote fetch, opportunistically warm the
  // cache with the hottest items this peer lacks.
  const bool remote = hit_class == HitClass::kHomeRegion ||
                      hit_class == HitClass::kReplicaRegion ||
                      hit_class == HitClass::kEnRoute;
  if (!pending.prefetch && remote) maybe_prefetch(peer);
}

void PrecinctEngine::maybe_prefetch(net::NodeId peer) {
  if (config_.prefetch_count == 0) return;
  std::size_t fired = 0;
  for (std::size_t rank = 0;
       rank < catalog_.size() && fired < config_.prefetch_count; ++rank) {
    std::size_t effective = rank;
    if (config_.hotspot_rotation_interval_s > 0.0) {
      const auto rotations = static_cast<std::size_t>(
          sim_.now() / config_.hotspot_rotation_interval_s);
      effective = (rank + rotations * config_.hotspot_shift) % catalog_.size();
    }
    const geo::Key key = catalog_.key_of(effective);
    if (find_copy(peer, key).entry != nullptr) continue;
    issue_prefetch(peer, key);
    ++fired;
  }
}

void PrecinctEngine::fail_request(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kProtocol,
                 it->second.requester,
                 "request #" + std::to_string(request_id) + " FAILED");
  if (it->second.measured) {
    ++metrics_.requests_failed;
  }
  sim_.cancel(it->second.timeout);
  pending_.erase(it);
}

void PrecinctEngine::on_receive(net::NodeId self, const net::Packet& raw) {
  net::Packet packet = raw;
  // Piggybacked position learning: any frame heard from src is as good
  // as a beacon from it.
  if (beacons_ != nullptr && config_.beacon_piggyback &&
      packet.src != net::kNoNode) {
    beacons_->on_beacon(self, packet.src, packet.src_location, sim_.now());
  }
  if (packet.recovery) {
    // Void-recovery admission: participate at most once per packet, and
    // only when strictly closer to the destination than the stuck node —
    // progress stays monotone, so recovery cannot storm.
    if (!flood_.mark_seen(self, packet.id)) return;
    if (geo::distance(net_.position(self), packet.dest_location) >=
        geo::distance(net_.position(packet.src), packet.dest_location)) {
      return;
    }
    packet.recovery = false;
  }
  switch (packet.kind) {
    case net::PacketKind::kRequest: handle_request(self, packet); break;
    case net::PacketKind::kResponse: handle_response(self, packet); break;
    case net::PacketKind::kUpdatePush: handle_update_push(self, packet); break;
    case net::PacketKind::kPoll: handle_poll(self, packet); break;
    case net::PacketKind::kPollReply: handle_poll_reply(self, packet); break;
    case net::PacketKind::kInvalidation:
      handle_invalidation(self, packet);
      break;
    case net::PacketKind::kKeyTransfer:
      handle_key_transfer(self, packet);
      break;
    case net::PacketKind::kPushAck:
      handle_push_ack(self, packet);
      break;
    case net::PacketKind::kBeacon:
      handle_beacon(self, packet);
      break;
    case net::PacketKind::kRegionUpdate:
      // Region-table dissemination: adopt and rebroadcast (flood with
      // duplicate suppression, like every other network-wide flood).
      if (flood_.mark_seen(self, packet.id)) flood_forward(self, packet);
      break;
  }
}

void PrecinctEngine::handle_request(net::NodeId self,
                                    const net::Packet& packet) {
  if (self == packet.origin) return;
  switch (packet.mode) {
    case net::RouteMode::kRegionFlood: {
      if (!flood_.mark_seen(self, packet.id)) return;
      // Peers outside the destination region drop without processing (§2.2).
      if (peers_[self].region != packet.dest_region) return;
      const Copy copy = find_copy(self, packet.key);
      if (copy.entry != nullptr && !copy.entry->invalidated) {
        // A flood scoped to the requester's own region is the local probe:
        // any answer there is a regional (local) hit.  Otherwise this is
        // the localized flood inside the home/replica region.
        const bool local_probe =
            packet.dest_region == regions_.containing(packet.origin_location);
        HitClass hit_class;
        if (local_probe) {
          hit_class = HitClass::kRegionalCache;
        } else if (packet.dest_region ==
                   hash_.home_region(packet.key, regions_)) {
          hit_class = HitClass::kHomeRegion;
        } else {
          hit_class = HitClass::kReplicaRegion;
        }
        if (copy.is_custody) {
          send_response(self, packet, *copy.entry, hit_class);
        } else {
          serve_from_copy(self, packet, *copy.entry, hit_class);
        }
        return;
      }
      flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kNetworkFlood: {
      if (!flood_.mark_seen(self, packet.id)) return;
      const Copy copy = find_copy(self, packet.key);
      if (copy.entry != nullptr && !copy.entry->invalidated) {
        if (copy.is_custody) {
          send_response(self, packet, *copy.entry, HitClass::kHomeRegion);
        } else {
          serve_from_copy(self, packet, *copy.entry,
                          HitClass::kRegionalCache);
        }
        return;
      }
      flood_forward(self, packet);
      return;
    }
    case net::RouteMode::kGeographic: {
      // En-route serving from the cumulative cache (§3.1).
      const Copy copy = find_copy(self, packet.key);
      if (copy.entry != nullptr && !copy.entry->invalidated) {
        if (copy.is_custody) {
          send_response(self, packet, *copy.entry,
                        peers_[self].region ==
                                hash_.home_region(packet.key, regions_)
                            ? HitClass::kHomeRegion
                            : HitClass::kReplicaRegion);
        } else {
          serve_from_copy(self, packet, *copy.entry, HitClass::kEnRoute);
        }
        return;
      }
      if (peers_[self].region == packet.dest_region) {
        // First node inside the destination region: become the broadcast
        // point and flood locally (§2.2).
        net::PacketRef scoped = net_.make_ref(packet);
        scoped->mode = net::RouteMode::kRegionFlood;
        scoped->ttl = config_.region_flood_ttl;
        scoped->src = self;
        scoped->id = net_.next_packet_id();
        flood_.mark_seen(self, scoped->id);
        net_.broadcast(std::move(scoped));
        return;
      }
      forward_geographic(self, packet);
      return;
    }
  }
}

void PrecinctEngine::send_response(net::NodeId self,
                                   const net::Packet& request,
                                   const cache::CacheEntry& entry,
                                   HitClass hit_class) {
  // Update the serving copy's utility (Figure 1: "Update utility value of
  // d in Presp") with the distance to the requesting region.
  const double reg_dst =
      region_distance(peers_[self].region,
                      regions_.containing(request.origin_location)) /
      region_diameter_;
  peers_[self].cache.touch(entry.key, sim_.now(), reg_dst);

  net::Packet response = make_packet(net::PacketKind::kResponse, self,
                                     entry.key);
  response.mode = net::RouteMode::kGeographic;
  response.dest_node = request.origin;
  response.dest_location = request.origin_location;
  response.ttl = config_.max_route_hops;
  response.request_id = request.request_id;
  response.version = entry.version;
  response.size_bytes = net::kHeaderBytes + entry.size_bytes;
  response.hit_class = static_cast<std::uint8_t>(hit_class);
  response.responder_region = peers_[self].region;
  if (hit_class == HitClass::kHomeRegion ||
      hit_class == HitClass::kReplicaRegion) {
    response.ttr_s = custodian_ttr_s(entry.key);
  } else {
    response.ttr_s = entry.ttr_expiry_s - sim_.now();
  }
  forward_geographic(self, response);
}

void PrecinctEngine::handle_response(net::NodeId self,
                                     const net::Packet& packet) {
  if (self == packet.dest_node) {
    const auto hit_class = static_cast<HitClass>(packet.hit_class);
    const bool authoritative = hit_class == HitClass::kHomeRegion ||
                               hit_class == HitClass::kReplicaRegion;
    // Copies are validated by their owners before being served
    // (serve_from_copy), so the requester accepts responses as-is.
    complete_request(packet.request_id, hit_class, packet.version,
                     packet.size_bytes - net::kHeaderBytes, packet.ttr_s,
                     packet.responder_region, authoritative);
    return;
  }
  forward_geographic(self, packet);
}

void PrecinctEngine::forward_geographic(net::NodeId self,
                                        net::PacketRef ref) {
  net::Packet& packet = *ref;  // sole reference until the radio shares it
  if (packet.ttl <= 0) {
    ++route_drops_ttl_;
    return;
  }
  packet.ttl -= 1;
  packet.hops += 1;
  // Final-hop delivery: when the addressee is in radio range, skip
  // position-based forwarding (it may have drifted from dest_location).
  if (packet.dest_node != net::kNoNode && packet.dest_node != self &&
      net_.in_range(self, packet.dest_node)) {
    packet.src = self;
    const net::NodeId dest = packet.dest_node;
    net_.unicast(std::move(ref), dest);
    return;
  }
  // next_hop must see src = previous hop: the perimeter right-hand rule
  // sweeps from the arrival edge.  Stamp src only after the decision.
  const auto next = gpsr_->next_hop(self, packet);
  packet.src = self;
  if (!next.has_value()) {
    ++route_drops_void_;
    // Dead end even in perimeter mode.  Recover with a one-shot scoped
    // broadcast (paper assumption iii: messages eventually reach the
    // correct node); receivers gate themselves in on_receive.
    if (flood_.mark_seen(self, packet.id)) {
      packet.recovery = true;
      packet.perimeter = false;
      packet.perimeter_entry_node = net::kNoNode;
      packet.perimeter_first_hop = net::kNoNode;
      net_.broadcast(std::move(ref));
    }
    return;
  }
  net_.unicast(std::move(ref), *next);
}

void PrecinctEngine::flood_forward(net::NodeId self,
                                   const net::Packet& packet) {
  if (!routing::FloodController::ttl_allows_forward(packet)) return;
  net::PacketRef fwd = net_.make_ref(packet);
  fwd->ttl -= 1;
  fwd->hops += 1;
  fwd->src = self;
  net_.broadcast(std::move(fwd));
}

}  // namespace precinct::core
