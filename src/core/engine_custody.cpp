// PrecinctEngine — custody and membership (paper §2.1, §2.3, §2.4):
// key custody handoff on inter-region mobility, failure and churn
// handling, and runtime region management with table dissemination.
#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ranges>

namespace precinct::core {

std::size_t PrecinctEngine::region_population(geo::RegionId region) const {
  std::size_t count = 0;
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    if (net_.is_alive(i) && peers_[i].region == region) ++count;
  }
  return count;
}

std::optional<geo::RegionId> PrecinctEngine::merge_regions(
    geo::RegionId a, geo::RegionId b, net::NodeId initiator) {
  const auto merged = regions_.merge(a, b);
  if (!merged.has_value()) return std::nullopt;
  commit_region_change(initiator);
  return merged;
}

std::optional<std::pair<geo::RegionId, geo::RegionId>>
PrecinctEngine::separate_region(geo::RegionId id, net::NodeId initiator) {
  const auto halves = regions_.separate(id);
  if (!halves.has_value()) return std::nullopt;
  commit_region_change(initiator);
  return halves;
}

void PrecinctEngine::commit_region_change(net::NodeId initiator) {
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kRegion, initiator,
                 "region table now v" + std::to_string(regions_.version()) +
                     " with " + std::to_string(regions_.size()) +
                     " regions; disseminating");
  // §2.1: "the peer needs to disseminate the update to all other peers in
  // the whole network."  One network-wide flood carrying the region table
  // (16 B of center+extent per region on the air).
  net::PacketRef packet = net_.make_ref(
      make_packet(net::PacketKind::kRegionUpdate, initiator,
                  /*key=*/regions_.version()));
  packet->mode = net::RouteMode::kNetworkFlood;
  packet->ttl = config_.network_flood_ttl;
  packet->size_bytes = net::kHeaderBytes + 16 * regions_.size();
  flood_.mark_seen(initiator, packet->id);
  net_.broadcast(std::move(packet));

  // The simulation keeps one shared table, so adoption of the new table
  // is immediate; every peer re-derives its region from it.
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    peers_[i].region = regions_.containing(net_.position(i));
  }
  // The region-diameter normalization tracks the (new) typical region.
  if (!regions_.empty()) {
    const geo::Rect& extent = regions_.regions().front().extent;
    region_diameter_ = std::hypot(extent.width(), extent.height());
  }
  relocate_displaced_custody();
}

void PrecinctEngine::relocate_displaced_custody() {
  // "each key in the network also needs to be relocated according to the
  // region table changes" (§2.1).  Every custodian checks its static keys
  // against the new table; keys whose region set no longer includes the
  // holder's region are transferred to their new home region (routed,
  // adopted by the first peer inside — at real message cost).
  for (net::NodeId holder = 0; holder < net_.node_count(); ++holder) {
    if (!net_.is_alive(holder)) continue;
    Peer& p = peers_[holder];
    std::vector<geo::Key> displaced;
    // Collect first: transfers mutate the static store.
    for (const auto rank : std::views::iota(std::size_t{0}, catalog_.size())) {
      const geo::Key key = catalog_.key_of(rank);
      const cache::CacheEntry* custody = p.cache.find_static(key);
      if (custody == nullptr) continue;
      const auto regions =
          hash_.key_regions(key, regions_, config_.replica_count);
      if (std::find(regions.begin(), regions.end(), p.region) ==
          regions.end()) {
        displaced.push_back(key);
      }
    }
    for (const geo::Key key : displaced) {
      const cache::CacheEntry entry = *p.cache.find_static(key);
      p.cache.erase_static(key);
      const geo::RegionId new_home = hash_.home_region(key, regions_);
      const geo::Region* region = regions_.find(new_home);
      if (region == nullptr) continue;
      if (measuring_) ++metrics_.custody_handoffs;
      net::Packet packet = make_packet(net::PacketKind::kKeyTransfer, holder,
                                       key);
      packet.mode = net::RouteMode::kGeographic;
      packet.dest_region = new_home;
      packet.dest_location = region->center;
      packet.ttl = config_.max_route_hops;
      packet.version = entry.version;
      packet.size_bytes = net::kHeaderBytes + entry.size_bytes;
      if (peers_[holder].region == new_home) {
        // Holder is already inside the new home region: adopt locally.
        p.cache.put_static(entry);
      } else {
        forward_geographic(holder, packet);
      }
    }
  }
}

void PrecinctEngine::maybe_rebalance_regions() {
  // One operation per round keeps churn (and dissemination floods) low.
  const double neighbor_radius = 1.5 * region_diameter_;
  bool acted = false;
  for (const geo::Region& r : regions_.regions()) {
    const std::size_t population = region_population(r.id);
    if (population < config_.min_region_peers && regions_.size() > 1) {
      const auto neighbors = regions_.neighbors_of(r.id, neighbor_radius);
      if (!neighbors.empty()) {
        // Merge into the least-populated neighbor to even things out.
        geo::RegionId partner = neighbors.front();
        std::size_t partner_pop = region_population(partner);
        for (const geo::RegionId n : neighbors) {
          const std::size_t pop = region_population(n);
          if (pop < partner_pop) {
            partner = n;
            partner_pop = pop;
          }
        }
        const net::NodeId initiator = pick_custody_target(net::kNoNode, r.id);
        merge_regions(r.id, partner,
                      initiator == net::kNoNode ? 0 : initiator);
        acted = true;
        break;
      }
    }
    if (population > config_.max_region_peers) {
      const net::NodeId initiator = pick_custody_target(net::kNoNode, r.id);
      separate_region(r.id, initiator == net::kNoNode ? 0 : initiator);
      acted = true;
      break;
    }
  }
  (void)acted;
  sim_.schedule(config_.region_reconfig_interval_s,
                [this] { maybe_rebalance_regions(); });
}

net::NodeId PrecinctEngine::pick_custody_target(net::NodeId mover,
                                                geo::RegionId region) {
  // §2.3: prefer peers with low mobility, near the region center, with
  // cache space.  Static space is uncapped here, so the score weighs
  // proximity to the center — and heavily penalizes members with no
  // radio link *inside* the region, which region-scoped floods (and thus
  // future lookups and pushes) could not reach.
  const geo::Region* r = regions_.find(region);
  if (r == nullptr) return net::kNoNode;
  net::NodeId best = net::kNoNode;
  double best_score = std::numeric_limits<double>::infinity();
  for (net::NodeId i = 0; i < net_.node_count(); ++i) {
    if (i == mover || !net_.is_alive(i) || peers_[i].region != region) {
      continue;
    }
    const double dist = geo::distance(net_.position(i), r->center);
    bool flood_reachable = false;
    for (const net::NodeId nb : net_.neighbors_cached(i)) {
      if (nb != mover && peers_[nb].region == region) {
        flood_reachable = true;
        break;
      }
    }
    const double score = dist + (flood_reachable ? 0.0 : 1e6);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void PrecinctEngine::handoff_custody(net::NodeId peer,
                                     geo::RegionId old_region) {
  Peer& p = peers_[peer];
  if (p.cache.static_count() == 0) return;
  const net::NodeId target = pick_custody_target(peer, old_region);
  const geo::Region* region = regions_.find(old_region);
  auto entries = p.cache.take_all_static();
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kCustody, peer,
                 "handing off " + std::to_string(entries.size()) +
                     " keys of region " + std::to_string(old_region) +
                     (target == net::kNoNode ? " (adoption routing)"
                                             : " to node " +
                                                   std::to_string(target)));
  if (measuring_) metrics_.custody_handoffs += entries.size();
  for (const auto& entry : entries) {
    net::Packet packet = make_packet(net::PacketKind::kKeyTransfer, peer,
                                     entry.key);
    packet.mode = net::RouteMode::kGeographic;
    packet.dest_region = old_region;
    packet.ttl = config_.max_route_hops;
    packet.version = entry.version;
    packet.size_bytes = net::kHeaderBytes + entry.size_bytes;
    if (target != net::kNoNode) {
      packet.dest_node = target;
      packet.dest_location = net_.position(target);
    } else if (region != nullptr) {
      // No suitable target is known: route the key back toward the old
      // region's center and let the first peer inside adopt custody.
      packet.dest_location = region->center;
    } else {
      continue;  // region vanished (table change); replica covers (§2.4)
    }
    forward_geographic(peer, packet);
  }
}

void PrecinctEngine::handle_key_transfer(net::NodeId self,
                                         const net::Packet& packet) {
  const bool addressed_to_me = self == packet.dest_node;
  const bool adoptable = packet.dest_node == net::kNoNode &&
                         peers_[self].region == packet.dest_region;
  if (!addressed_to_me && !adoptable) {
    forward_geographic(self, packet);
    return;
  }
  cache::CacheEntry entry;
  entry.key = packet.key;
  entry.size_bytes = packet.size_bytes - net::kHeaderBytes;
  entry.version = packet.version;
  peers_[self].cache.put_static(entry);
}

void PrecinctEngine::check_region(net::NodeId peer) {
  if (!net_.is_alive(peer)) return;
  const geo::RegionId now_in = regions_.containing(net_.position(peer));
  if (now_in != peers_[peer].region) {
    const geo::RegionId old_region = peers_[peer].region;
    peers_[peer].region = now_in;
    handoff_custody(peer, old_region);  // inter-region mobility (§2.3)
  }
  const std::uint32_t generation = peers_[peer].generation;
  sim_.schedule(config_.region_check_interval_s, [this, peer, generation] {
    if (peers_[peer].generation == generation) check_region(peer);
  });
}

void PrecinctEngine::fail_peer(net::NodeId peer, bool graceful) {
  if (!net_.is_alive(peer)) return;
  if (graceful) {
    // A graceful departure transfers custody first (§2.4 assumption ii)
    // and lingers long enough for the queued transfer frames to flush.
    handoff_custody(peer, peers_[peer].region);
    sim_.schedule(0.5, [this, peer] { net_.kill(peer); });
  } else {
    net_.kill(peer);
  }
}

void PrecinctEngine::revive_peer(net::NodeId peer) {
  if (net_.is_alive(peer)) return;
  net_.revive(peer);
  ++peers_[peer].generation;  // kill any still-scheduled old loops
  // A rejoining device starts cold: no cached data, no custody, no
  // neighbor knowledge, and a fresh region fix.
  Peer& p = peers_[peer];
  for (const geo::Key key : p.cache.keys()) p.cache.erase(key);
  (void)p.cache.take_all_static();
  if (beacons_ != nullptr) beacons_->clear_node(peer);
  p.region = regions_.containing(net_.position(peer));
  schedule_next_request(peer);
  if (config_.updates_enabled &&
      config_.consistency != consistency::Mode::kNone) {
    schedule_next_update(peer);
  }
  if (config_.mobile) {
    sim_.schedule(config_.region_check_interval_s,
                  [this, peer] { check_region(peer); });
  }
  if (config_.use_beacons) schedule_beacon(peer);
  PRECINCT_TRACE(tracer_, sim_.now(), sim::TraceCategory::kProtocol, peer,
                 "rejoined the network");
}

void PrecinctEngine::schedule_crashes() {
  const double wait = rng_.exponential(1.0 / config_.crash_rate_per_s);
  sim_.schedule(wait, [this] {
    // Crash a uniformly random live peer.
    std::vector<net::NodeId> alive;
    for (net::NodeId i = 0; i < net_.node_count(); ++i) {
      if (net_.is_alive(i)) alive.push_back(i);
    }
    if (alive.size() > 2) {  // keep at least a residual network
      const net::NodeId victim =
          alive[rng_.uniform_int(alive.size())];
      fail_peer(victim, rng_.uniform() < config_.graceful_fraction);
    }
    schedule_crashes();
  });
}

void PrecinctEngine::schedule_joins() {
  const double wait = rng_.exponential(1.0 / config_.join_rate_per_s);
  sim_.schedule(wait, [this] {
    std::vector<net::NodeId> dead;
    for (net::NodeId i = 0; i < net_.node_count(); ++i) {
      if (!net_.is_alive(i)) dead.push_back(i);
    }
    if (!dead.empty()) {
      revive_peer(dead[rng_.uniform_int(dead.size())]);
    }
    schedule_joins();
  });
}

}  // namespace precinct::core
