// RetrievalScheme — shared requester-side flow (paper §2.2, §3): issue,
// own-cache serve, validation, completion/metrics accounting, failure.
#include "core/retrieval_scheme.hpp"

#include <algorithm>
#include <string>

#include "core/consistency_scheme.hpp"

namespace precinct::core {

void RetrievalScheme::issue(net::NodeId peer, geo::Key key, bool prefetch) {
  const std::uint64_t request_id = ctx_.next_correlation_id();
  Pending pending;
  pending.key = key;
  pending.requester = peer;
  pending.created_at = ctx_.sim.now();
  pending.prefetch = prefetch;
  pending.measured = ctx_.measuring && !prefetch;
  pending_.emplace(request_id, pending);

  if (pending.measured) {
    ++ctx_.metrics.requests_issued;
    ctx_.metrics.bytes_requested += ctx_.catalog.item(key).size_bytes;
  }
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kProtocol,
                 peer,
                 "request #" + std::to_string(request_id) + " for key " +
                     std::to_string(key));

  const EngineContext::Copy copy = ctx_.find_copy(peer, key);
  if (copy.entry != nullptr &&
      (copy.is_custody || !copy.entry->invalidated)) {
    serve_from_own_cache(peer, request_id, *copy.entry, copy.is_custody);
    return;
  }
  start_search(request_id);
}

void RetrievalScheme::serve_from_own_cache(net::NodeId peer,
                                           std::uint64_t request_id,
                                           const cache::CacheEntry& entry,
                                           bool is_custody) {
  Pending& pending = pending_.at(request_id);
  const double ttr_remaining = entry.ttr_expiry_s - ctx_.sim.now();
  // Custody copies are the owner's copy: never polled.
  if (!is_custody && ctx_.consistency->needs_validation(ttr_remaining)) {
    pending.has_candidate = true;
    pending.candidate_own = true;
    pending.candidate_class = HitClass::kOwnCache;
    pending.candidate_version = entry.version;
    pending.candidate_bytes = entry.size_bytes;
    pending.candidate_region = ctx_.peers[peer].region;
    start_validation(request_id);
    return;
  }
  complete_request(request_id, HitClass::kOwnCache, entry.version,
                   entry.size_bytes, ttr_remaining, ctx_.peers[peer].region,
                   /*validated=*/is_custody);
}

void RetrievalScheme::start_validation(std::uint64_t request_id) {
  Pending& pending = pending_.at(request_id);
  pending.phase = Phase::kValidate;
  if (!ctx_.consistency->send_poll(pending.requester, pending.key, request_id,
                                   pending.candidate_version)) {
    // No home region to poll; serve the candidate as-is.
    complete_request(request_id, pending.candidate_class,
                     pending.candidate_version, pending.candidate_bytes, 0.0,
                     pending.candidate_region, /*validated=*/false);
    return;
  }
  pending.timeout =
      ctx_.sim.schedule(ctx_.config.remote_timeout_s, [this, request_id] {
        on_timeout(request_id, Phase::kValidate);
      });
}

void RetrievalScheme::on_timeout(std::uint64_t request_id, Phase phase) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.phase != phase) return;
  if (phase == Phase::kValidate) {
    // The home region did not answer the poll: treat the copy as a miss
    // and fetch through the normal search path (never serve a copy the
    // scheme demanded be validated).
    it->second.has_candidate = false;
    restart_search(request_id);
    return;
  }
  on_phase_timeout(request_id, phase);
}

void RetrievalScheme::on_poll_reply(net::NodeId self,
                                    const net::Packet& packet) {
  (void)self;
  if (const auto it = pending_.find(packet.request_id);
      it != pending_.end() && it->second.phase == Phase::kValidate) {
    // Requester validating its own cached copy before serving itself.
    Pending& pending = it->second;
    pending.candidate_version = packet.version;
    complete_request(packet.request_id, pending.candidate_class,
                     pending.candidate_version, pending.candidate_bytes,
                     packet.ttr_s, pending.candidate_region,
                     /*validated=*/true);
    return;
  }
  // Otherwise a responder-side validation (serve_from_copy).
  finish_responder_poll(packet.request_id);
}

void RetrievalScheme::complete_request(std::uint64_t request_id,
                                       HitClass hit_class,
                                       std::uint64_t version,
                                       std::size_t item_bytes,
                                       double ttr_remaining_s,
                                       geo::RegionId responder_region,
                                       bool validated) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // duplicate response
  Pending pending = it->second;
  pending_.erase(it);
  ctx_.sim.cancel(pending.timeout);

  const net::NodeId peer = pending.requester;
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kProtocol,
                 peer,
                 "request #" + std::to_string(request_id) +
                     " served (class " +
                     std::to_string(static_cast<int>(hit_class)) + ", v" +
                     std::to_string(version) + ")");
  const double latency =
      hit_class == HitClass::kOwnCache && pending.phase != Phase::kValidate
          ? kLocalServeLatency
          : std::max(kLocalServeLatency, ctx_.sim.now() - pending.created_at);

  if (pending.measured) {
    Metrics& metrics = ctx_.metrics;
    ++metrics.requests_completed;
    metrics.record_hit(hit_class);
    metrics.latency_s.add(latency);
    metrics.latency_q.add(latency);
    metrics.latency_by_class[static_cast<std::size_t>(hit_class)].add(
        latency);
    if (hit_class == HitClass::kOwnCache ||
        hit_class == HitClass::kRegionalCache) {
      metrics.bytes_hit += item_bytes;
    }
    // False-hit accounting (Fig 7): every completed request is a hit
    // "shown as valid"; it is false when the served version is older than
    // the owner's (home custodian's) current copy.
    ++metrics.cache_served_valid;
    if (const auto owner_version = ctx_.authoritative_version(pending.key);
        owner_version.has_value() && version < *owner_version) {
      ++metrics.false_hits;
    }
  }

  // Touch / admit the copy (cache admission control, §3.2: cache only what
  // originated outside the requester's region).
  PeerState& p = ctx_.peers[peer];
  const double reg_dst =
      ctx_.region_distance(p.region,
                           ctx_.hash.home_region(pending.key, ctx_.regions)) /
      ctx_.region_diameter;
  if (p.cache.find(pending.key) != nullptr) {
    p.cache.touch(pending.key, ctx_.sim.now(), reg_dst);
    p.cache.refresh(pending.key, version,
                    ctx_.sim.now() + std::max(0.0, ttr_remaining_s));
  } else if (hit_class != HitClass::kOwnCache &&
             responder_region != p.region &&
             p.cache.capacity_bytes() > 0) {
    cache::CacheEntry entry;
    entry.key = pending.key;
    entry.size_bytes = item_bytes;
    entry.version = version;
    entry.access_count = 1.0;
    entry.region_distance = reg_dst;
    entry.ttr_expiry_s = ctx_.sim.now() + std::max(0.0, ttr_remaining_s);
    entry.fetched_at_s = entry.last_access_s = ctx_.sim.now();
    const auto result = p.cache.insert(entry);
    if (ctx_.tracer != nullptr &&
        ctx_.tracer->enabled(sim::TraceCategory::kCache)) {
      std::string msg = result.admitted ? "cached key " : "rejected key ";
      msg += std::to_string(pending.key);
      for (const geo::Key victim : result.evicted) {
        msg += ", evicted " + std::to_string(victim);
      }
      ctx_.tracer->emit(ctx_.sim.now(), sim::TraceCategory::kCache, peer,
                        std::move(msg));
    }
  }
  (void)validated;

  // Extension: after a real remote fetch, opportunistically warm the
  // cache with the hottest items this peer lacks.
  const bool remote = hit_class == HitClass::kHomeRegion ||
                      hit_class == HitClass::kReplicaRegion ||
                      hit_class == HitClass::kEnRoute;
  if (!pending.prefetch && remote) maybe_prefetch(peer);
}

void RetrievalScheme::maybe_prefetch(net::NodeId peer) {
  if (ctx_.config.prefetch_count == 0) return;
  std::size_t fired = 0;
  for (std::size_t rank = 0;
       rank < ctx_.catalog.size() && fired < ctx_.config.prefetch_count;
       ++rank) {
    std::size_t effective = rank;
    if (ctx_.config.hotspot_rotation_interval_s > 0.0) {
      const auto rotations = static_cast<std::size_t>(
          ctx_.sim.now() / ctx_.config.hotspot_rotation_interval_s);
      effective = (rank + rotations * ctx_.config.hotspot_shift) %
                  ctx_.catalog.size();
    }
    const geo::Key key = ctx_.catalog.key_of(effective);
    if (ctx_.find_copy(peer, key).entry != nullptr) continue;
    issue(peer, key, /*prefetch=*/true);
    ++fired;
  }
}

void RetrievalScheme::fail_request(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PRECINCT_TRACE(ctx_.tracer, ctx_.sim.now(), sim::TraceCategory::kProtocol,
                 it->second.requester,
                 "request #" + std::to_string(request_id) + " FAILED");
  if (it->second.measured) {
    ++ctx_.metrics.requests_failed;
  }
  ctx_.sim.cancel(it->second.timeout);
  pending_.erase(it);
}

std::uint64_t RetrievalScheme::measured_pending() const noexcept {
  std::uint64_t count = 0;
  for (const auto& [id, p] : pending_) {
    if (p.measured) ++count;
  }
  return count;
}

}  // namespace precinct::core
