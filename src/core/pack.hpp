// Scenario packs (ROADMAP item 3): named workload bundles under
// examples/packs/, each a `<name>.conf` scenario plus a `<name>.golden`
// expected-metrics file.  Packs pin the workloads the paper never
// reached — structured mobility, heterogeneous fleets, flash crowds —
// so the fingerprint suite, the fuzzer and CI can all regression-gate
// them like the nine classic configs.
//
// Golden format: a comment header, then two fingerprint sections —
//
//   [full]     core::fingerprint of the pack run at its configured scale
//   [reduced]  the same under reduced_for_test() windows (what the unit
//              test suite runs, so `ctest` stays fast)
//
// Both sections must be byte-identical across world shards K in {1,2,4}
// like every other scenario; CI checks that via world_fingerprint on top
// of these plain-run sections.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"

namespace precinct::core {

struct ScenarioPack {
  std::string name;
  std::string config_path;
  std::string golden_path;  ///< may not exist yet (before --write-golden)
  PrecinctConfig config;    ///< parsed and validated
};

/// Directory holding the packs, the first that exists of: the
/// PRECINCT_PACK_DIR environment variable, `examples/packs` relative to
/// the working directory (also one and two levels up, covering build
/// trees), then the source-tree path baked in at configure time.
/// Throws std::runtime_error when none resolves.
[[nodiscard]] std::string pack_dir();

/// Sorted names of every installed pack (`<name>.conf` under pack_dir()).
[[nodiscard]] std::vector<std::string> list_packs();

/// Load a named pack.  Unknown names throw std::invalid_argument listing
/// the available packs, so a typo prints the catalog instead of a bare
/// file error.
[[nodiscard]] ScenarioPack load_pack(const std::string& name);

/// Canonical reduced-scale variant pinned by the golden [reduced]
/// section: identical fleet, topology and workload, shorter warmup and
/// measurement windows.
[[nodiscard]] PrecinctConfig reduced_for_test(const PrecinctConfig& config);

/// Parsed golden file.
struct PackGolden {
  std::string full;     ///< fingerprint at configured scale
  std::string reduced;  ///< fingerprint under reduced_for_test()
};

/// Parse a golden file's text; throws std::invalid_argument when either
/// section is missing.
[[nodiscard]] PackGolden parse_golden(const std::string& text);

/// Render a golden file (the exact bytes --write-golden checks in).
[[nodiscard]] std::string render_golden(const std::string& pack_name,
                                        const PackGolden& golden);

}  // namespace precinct::core
