// PrecinctLookup — the paper's retrieval scheme (§2.2, §3.1): regional
// probe of the cumulative cache, then the geographically hashed home
// region, then the replica fallback chain.
#pragma once

#include "core/retrieval_scheme.hpp"

namespace precinct::core {

class PrecinctLookup final : public RetrievalScheme {
 public:
  using RetrievalScheme::RetrievalScheme;

  [[nodiscard]] const char* name() const noexcept override {
    return "precinct";
  }

 protected:
  void start_search(std::uint64_t request_id) override;
  void restart_search(std::uint64_t request_id) override;
  void on_phase_timeout(std::uint64_t request_id, Phase phase) override;
  void handle_request(net::NodeId self, const net::Packet& packet) override;

 private:
  /// Flood the requester's own region: any peer's cached copy answers
  /// (the cumulative-cache probe, §3.1).
  void start_regional_probe(std::uint64_t request_id);
  /// Route the request to the home region (lookup_index 0) or the i-th
  /// replica region; fails the request when the chain is exhausted.
  void start_remote_lookup(std::uint64_t request_id,
                           std::size_t lookup_index);
  /// (Re)send the current remote lookup and arm its timeout; the k-th
  /// retransmission waits 2^k * remote_timeout_s (exponential backoff).
  void send_remote_lookup(std::uint64_t request_id);
};

}  // namespace precinct::core
