// RetrievalScheme — the data-search strategy axis (paper §2.2, §3 vs the
// §6.2 baselines).  The base class owns everything every scheme needs:
// the requester-side Pending phase machine, responder-side serving with
// consistency validation, completion/metrics accounting and the
// request/response packet handlers.  Concrete schemes decide only how a
// search starts and how it escalates on timeout.
//
// Schemes communicate with the rest of the stack only via packets and
// the EngineContext (DESIGN.md §8); consistency questions (does this
// copy need validating? poll the home region) are delegated to the
// installed ConsistencyScheme.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/engine_context.hpp"
#include "net/packet_dispatch.hpp"

namespace precinct::core {

class RetrievalScheme {
 public:
  explicit RetrievalScheme(EngineContext& ctx) noexcept : ctx_(ctx) {}
  virtual ~RetrievalScheme() = default;

  RetrievalScheme(const RetrievalScheme&) = delete;
  RetrievalScheme& operator=(const RetrievalScheme&) = delete;

  /// Registry name ("precinct", "flooding", "expanding-ring", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Claim the packet kinds this module owns (kRequest, kResponse).
  void register_handlers(net::PacketDispatcher& dispatch);

  /// Start one lookup at `peer` for `key`.  A prefetch is an uncounted
  /// background fetch: traffic and energy are charged but request
  /// metrics are not touched.
  void issue(net::NodeId peer, geo::Key key, bool prefetch);

  /// Tail of a poll reply (called by the ConsistencyScheme once the
  /// reply refreshed the local copy): either completes a requester-side
  /// kValidate request or finishes a responder-side validation poll.
  void on_poll_reply(net::NodeId self, const net::Packet& packet);

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  /// Measured requests still in flight (finalize counts them as failed).
  [[nodiscard]] std::uint64_t measured_pending() const noexcept;

  /// Observe-only projection of one in-flight request, exposed for the
  /// invariant checker without widening access to the phase machine.
  struct PendingView {
    geo::Key key = 0;
    net::NodeId requester = net::kNoNode;
    double created_at = 0.0;
    bool measured = false;
    bool prefetch = false;
    int attempts = 0;
  };
  /// Visit every in-flight request (unspecified order, no allocation).
  template <typename Fn>
  void visit_pending(Fn&& fn) const {
    for (const auto& [id, p] : pending_) {
      fn(PendingView{p.key, p.requester, p.created_at, p.measured, p.prefetch,
                     p.attempts});
    }
  }

 protected:
  /// Latency charged to a request served from the peer's own cache: one
  /// protocol processing delay, no radio time.
  static constexpr double kLocalServeLatency = 1e-3;

  // -- requester-side request tracking ----------------------------------------
  enum class Phase : std::uint8_t {
    kRegional,  ///< waiting on the local-region flood
    kHome,      ///< waiting on the home-region lookup
    kReplica,   ///< waiting on the replica-region fallback
    kValidate,  ///< have a cached/served copy, polling the home region
    kRing,      ///< expanding-ring baseline: waiting on the current ring
    kFlood,     ///< flooding baseline: waiting on the network flood
  };
  struct Pending {
    geo::Key key = 0;
    net::NodeId requester = net::kNoNode;
    double created_at = 0.0;
    bool measured = false;
    bool prefetch = false;  ///< background fetch: no metrics, no cascading
    Phase phase = Phase::kRegional;
    int ring_index = 0;
    std::size_t lookup_index = 0;   ///< 0 = home, i > 0 = i-th replica
    int attempts = 0;  ///< retransmissions of the current remote lookup
    bool probed_own_region = false; ///< regional probe already flooded it
    sim::EventHandle timeout;
    // Candidate copy awaiting validation (kValidate).
    bool has_candidate = false;
    bool candidate_own = false;  ///< candidate is the requester's own copy
    HitClass candidate_class = HitClass::kOwnCache;
    std::uint64_t candidate_version = 0;
    std::size_t candidate_bytes = 0;
    geo::RegionId candidate_region = geo::kInvalidRegion;
  };
  /// A responder validating its own expired-TTR copy before serving: the
  /// original request is parked until the home region answers the poll.
  struct ResponderPoll {
    net::NodeId responder = net::kNoNode;
    net::Packet request;  ///< the request being served
    HitClass hit_class = HitClass::kRegionalCache;
    sim::EventHandle timeout;
  };

  // -- scheme-specific strategy -------------------------------------------------
  /// Launch the first search step for a request that missed locally.
  virtual void start_search(std::uint64_t request_id) = 0;
  /// Re-enter the search after a failed validation (the candidate copy
  /// was dropped; fetch through the normal path).
  virtual void restart_search(std::uint64_t request_id) = 0;
  /// Escalate after a non-validate phase timed out (next replica, next
  /// ring, give up, ...).
  virtual void on_phase_timeout(std::uint64_t request_id, Phase phase) = 0;
  /// Responder/forwarder side of a kRequest in this scheme's route modes.
  virtual void handle_request(net::NodeId self, const net::Packet& packet) = 0;

  // -- shared requester-side flow -----------------------------------------------
  void serve_from_own_cache(net::NodeId peer, std::uint64_t request_id,
                            const cache::CacheEntry& entry, bool is_custody);
  void start_validation(std::uint64_t request_id);
  void complete_request(std::uint64_t request_id, HitClass hit_class,
                        std::uint64_t version, std::size_t item_bytes,
                        double ttr_remaining_s, geo::RegionId responder_region,
                        bool validated);
  void fail_request(std::uint64_t request_id);
  void on_timeout(std::uint64_t request_id, Phase phase);
  /// Fire popularity-gradient prefetches after a remote fetch (extension).
  void maybe_prefetch(net::NodeId peer);

  // -- shared responder-side flow -------------------------------------------------
  /// Serve `request` from a non-custody copy: if the consistency scheme
  /// requires it, poll the home region first (Fig 3 runs at the peer that
  /// holds the copy), then respond.
  void serve_from_copy(net::NodeId self, const net::Packet& request,
                       const cache::CacheEntry& entry, HitClass hit_class);
  void finish_responder_poll(std::uint64_t poll_id);
  void send_response(net::NodeId self, const net::Packet& request,
                     const cache::CacheEntry& entry, HitClass hit_class);
  void handle_response(net::NodeId self, const net::Packet& packet);
  /// kRequest handling per route mode; schemes compose the modes they use.
  void handle_request_region_flood(net::NodeId self, const net::Packet& packet);
  void handle_request_network_flood(net::NodeId self,
                                    const net::Packet& packet);
  void handle_request_geographic(net::NodeId self, const net::Packet& packet);

  EngineContext& ctx_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, ResponderPoll> responder_polls_;
};

}  // namespace precinct::core
