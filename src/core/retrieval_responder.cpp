// RetrievalScheme — shared responder side: serving requests out of local
// copies (with consistency validation, Fig 3), the per-route-mode request
// handling building blocks and the response path back to the requester.
#include "core/retrieval_scheme.hpp"

#include "core/consistency_scheme.hpp"

namespace precinct::core {

void RetrievalScheme::register_handlers(net::PacketDispatcher& dispatch) {
  dispatch.set(net::PacketKind::kRequest,
               [this](net::NodeId self, const net::Packet& packet) {
                 if (self == packet.origin) return;
                 handle_request(self, packet);
               });
  dispatch.set(net::PacketKind::kResponse,
               [this](net::NodeId self, const net::Packet& packet) {
                 handle_response(self, packet);
               });
}

void RetrievalScheme::handle_request_region_flood(net::NodeId self,
                                                  const net::Packet& packet) {
  if (!ctx_.flood.mark_seen(self, packet.id)) return;
  // Peers outside the destination region drop without processing (§2.2).
  if (ctx_.peers[self].region != packet.dest_region) return;
  const EngineContext::Copy copy = ctx_.find_copy(self, packet.key);
  if (copy.entry != nullptr && !copy.entry->invalidated) {
    // A flood scoped to the requester's own region is the local probe:
    // any answer there is a regional (local) hit.  Otherwise this is
    // the localized flood inside the home/replica region.
    const bool local_probe =
        packet.dest_region == ctx_.regions.containing(packet.origin_location);
    HitClass hit_class;
    if (local_probe) {
      hit_class = HitClass::kRegionalCache;
    } else if (packet.dest_region ==
               ctx_.hash.home_region(packet.key, ctx_.regions)) {
      hit_class = HitClass::kHomeRegion;
    } else {
      hit_class = HitClass::kReplicaRegion;
    }
    if (copy.is_custody) {
      send_response(self, packet, *copy.entry, hit_class);
    } else {
      serve_from_copy(self, packet, *copy.entry, hit_class);
    }
    return;
  }
  ctx_.flood_forward(self, packet);
}

void RetrievalScheme::handle_request_network_flood(net::NodeId self,
                                                   const net::Packet& packet) {
  if (!ctx_.flood.mark_seen(self, packet.id)) return;
  const EngineContext::Copy copy = ctx_.find_copy(self, packet.key);
  if (copy.entry != nullptr && !copy.entry->invalidated) {
    if (copy.is_custody) {
      send_response(self, packet, *copy.entry, HitClass::kHomeRegion);
    } else {
      serve_from_copy(self, packet, *copy.entry, HitClass::kRegionalCache);
    }
    return;
  }
  ctx_.flood_forward(self, packet);
}

void RetrievalScheme::handle_request_geographic(net::NodeId self,
                                                const net::Packet& packet) {
  // En-route serving from the cumulative cache (§3.1).
  const EngineContext::Copy copy = ctx_.find_copy(self, packet.key);
  if (copy.entry != nullptr && !copy.entry->invalidated) {
    if (copy.is_custody) {
      send_response(self, packet, *copy.entry,
                    ctx_.peers[self].region ==
                            ctx_.hash.home_region(packet.key, ctx_.regions)
                        ? HitClass::kHomeRegion
                        : HitClass::kReplicaRegion);
    } else {
      serve_from_copy(self, packet, *copy.entry, HitClass::kEnRoute);
    }
    return;
  }
  if (ctx_.peers[self].region == packet.dest_region) {
    // First node inside the destination region: become the broadcast
    // point and flood locally (§2.2).
    net::PacketRef scoped = ctx_.net.make_ref(packet);
    scoped->mode = net::RouteMode::kRegionFlood;
    scoped->ttl = ctx_.config.region_flood_ttl;
    scoped->src = self;
    scoped->id = ctx_.net.next_packet_id();
    ctx_.flood.mark_seen(self, scoped->id);
    ctx_.net.broadcast(std::move(scoped));
    return;
  }
  ctx_.forward_geographic(self, packet);
}

void RetrievalScheme::serve_from_copy(net::NodeId self,
                                      const net::Packet& request,
                                      const cache::CacheEntry& entry,
                                      HitClass hit_class) {
  // Fig 3's pull check runs at the peer holding the copy: validate an
  // expired/unvalidated copy against the home region before serving, so
  // the refreshed TTR benefits every later request hitting this copy.
  const double ttr_remaining = entry.ttr_expiry_s - ctx_.sim.now();
  if (!ctx_.consistency->needs_validation(ttr_remaining)) {
    send_response(self, request, entry, hit_class);
    return;
  }
  const std::uint64_t poll_id = ctx_.next_correlation_id();
  if (!ctx_.consistency->send_poll(self, entry.key, poll_id, entry.version)) {
    send_response(self, request, entry, hit_class);
    return;
  }
  ResponderPoll poll;
  poll.responder = self;
  poll.request = request;
  poll.hit_class = hit_class;
  poll.timeout =
      ctx_.sim.schedule(ctx_.config.remote_timeout_s, [this, poll_id] {
        // Home region unreachable: stay silent — the requester's own phase
        // timeout escalates the search instead of us serving unvalidated
        // data.
        responder_polls_.erase(poll_id);
      });
  responder_polls_.emplace(poll_id, poll);
}

void RetrievalScheme::finish_responder_poll(std::uint64_t poll_id) {
  const auto it = responder_polls_.find(poll_id);
  if (it == responder_polls_.end()) return;
  const ResponderPoll poll = it->second;
  responder_polls_.erase(it);
  ctx_.sim.cancel(poll.timeout);
  // Serve whatever the copy holds now (the poll reply refreshed it); the
  // copy may also have been evicted or invalidated meanwhile.
  const EngineContext::Copy copy =
      ctx_.find_copy(poll.responder, poll.request.key);
  if (copy.entry != nullptr && !copy.entry->invalidated) {
    send_response(poll.responder, poll.request, *copy.entry, poll.hit_class);
  }
}

void RetrievalScheme::send_response(net::NodeId self,
                                    const net::Packet& request,
                                    const cache::CacheEntry& entry,
                                    HitClass hit_class) {
  // Update the serving copy's utility (Figure 1: "Update utility value of
  // d in Presp") with the distance to the requesting region.
  const double reg_dst =
      ctx_.region_distance(ctx_.peers[self].region,
                           ctx_.regions.containing(request.origin_location)) /
      ctx_.region_diameter;
  ctx_.peers[self].cache.touch(entry.key, ctx_.sim.now(), reg_dst);

  net::Packet response =
      ctx_.make_packet(net::PacketKind::kResponse, self, entry.key);
  response.mode = net::RouteMode::kGeographic;
  response.dest_node = request.origin;
  response.dest_location = request.origin_location;
  response.ttl = ctx_.config.max_route_hops;
  response.request_id = request.request_id;
  response.version = entry.version;
  response.size_bytes = net::kHeaderBytes + entry.size_bytes;
  response.hit_class = static_cast<std::uint8_t>(hit_class);
  response.responder_region = ctx_.peers[self].region;
  if (hit_class == HitClass::kHomeRegion ||
      hit_class == HitClass::kReplicaRegion) {
    response.ttr_s = ctx_.consistency->custodian_ttr_s(entry.key);
  } else {
    response.ttr_s = entry.ttr_expiry_s - ctx_.sim.now();
  }
  ctx_.forward_geographic(self, response);
}

void RetrievalScheme::handle_response(net::NodeId self,
                                      const net::Packet& packet) {
  if (self == packet.dest_node) {
    // A retransmitted lookup can solicit several answers: only the first
    // completes the request, later arrivals are counted and dropped.
    if (pending_.find(packet.request_id) == pending_.end()) {
      if (ctx_.measuring) ++ctx_.metrics.duplicate_responses_suppressed;
      return;
    }
    const auto hit_class = static_cast<HitClass>(packet.hit_class);
    const bool authoritative = hit_class == HitClass::kHomeRegion ||
                               hit_class == HitClass::kReplicaRegion;
    // Copies are validated by their owners before being served
    // (serve_from_copy), so the requester accepts responses as-is.
    complete_request(packet.request_id, hit_class, packet.version,
                     packet.size_bytes - net::kHeaderBytes, packet.ttr_s,
                     packet.responder_region, authoritative);
    return;
  }
  ctx_.forward_geographic(self, packet);
}

}  // namespace precinct::core
