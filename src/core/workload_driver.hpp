// WorkloadDriver — everything that *drives* the protocol rather than
// implementing it: Zipf request sampling (with hotspot rotation),
// Poisson request/update generators, GPSR beaconing and failure/churn
// injection.  Each generator is a self-rescheduling simulator event,
// generation-guarded so a crash/rejoin cycle cannot double the load.
//
// Communicates with the protocol modules only via the EngineContext
// (DESIGN.md §8); it owns the kBeacon packet kind.
#pragma once

#include <memory>

#include "core/engine_context.hpp"
#include "net/packet_dispatch.hpp"
#include "workload/workload_script.hpp"

namespace precinct::core {

class WorkloadDriver {
 public:
  explicit WorkloadDriver(EngineContext& ctx) noexcept : ctx_(ctx) {}

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Claim the packet kinds this module owns (kBeacon).
  void register_handlers(net::PacketDispatcher& dispatch);

  /// Zipf-sample a key, applying the hotspot rotation if configured.
  [[nodiscard]] geo::Key sample_key(net::NodeId peer);

  void schedule_next_request(net::NodeId peer);
  void schedule_next_update(net::NodeId peer);
  /// Schedule a deterministic scripted workload (workload/workload_script)
  /// on top of the generators.  Owner-gated like every other driver: in a
  /// world-sharded run each domain applies only its owned nodes' lines,
  /// so a fleet of replicas executes the script exactly once.  One-shot
  /// events: a node found dead at its instant skips the line.
  void schedule_script(const std::vector<workload::ScriptEvent>& events);
  void schedule_region_checks();
  /// Flash-crowd Zipf drift: every zipf_drift_step_s, rebuild the shared
  /// generator's CDF for theta = clamp(base + drift * t, 0, 4).  A
  /// deterministic function of sim time, so every world-sharded domain
  /// re-skews identically without coordination.
  void schedule_zipf_drift();
  void schedule_crashes();
  void schedule_joins();
  void schedule_beacon(net::NodeId peer);

 private:
  void handle_beacon(net::NodeId self, const net::Packet& packet);
  /// The failure-injection RNG: ctx.rng in a plain run; in a
  /// world-sharded run a per-domain stream (salt 0xFA11 ^ domain) so
  /// every domain injects its own owned-population share independently
  /// and deterministically for any worker count.
  [[nodiscard]] support::Rng& inject_rng();
  /// Fraction of the world this engine owns (1.0 in a plain run) — the
  /// churn rates scale by it so the network-wide rate is preserved.
  [[nodiscard]] double owned_fraction() const;

  EngineContext& ctx_;
  std::unique_ptr<support::Rng> shard_inject_rng_;
};

}  // namespace precinct::core
