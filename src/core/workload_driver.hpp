// WorkloadDriver — everything that *drives* the protocol rather than
// implementing it: Zipf request sampling (with hotspot rotation),
// Poisson request/update generators, GPSR beaconing and failure/churn
// injection.  Each generator is a self-rescheduling simulator event,
// generation-guarded so a crash/rejoin cycle cannot double the load.
//
// Communicates with the protocol modules only via the EngineContext
// (DESIGN.md §8); it owns the kBeacon packet kind.
#pragma once

#include "core/engine_context.hpp"
#include "net/packet_dispatch.hpp"

namespace precinct::core {

class WorkloadDriver {
 public:
  explicit WorkloadDriver(EngineContext& ctx) noexcept : ctx_(ctx) {}

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Claim the packet kinds this module owns (kBeacon).
  void register_handlers(net::PacketDispatcher& dispatch);

  /// Zipf-sample a key, applying the hotspot rotation if configured.
  [[nodiscard]] geo::Key sample_key(net::NodeId peer);

  void schedule_next_request(net::NodeId peer);
  void schedule_next_update(net::NodeId peer);
  void schedule_region_checks();
  void schedule_crashes();
  void schedule_joins();
  void schedule_beacon(net::NodeId peer);

 private:
  void handle_beacon(net::NodeId self, const net::Packet& packet);

  EngineContext& ctx_;
};

}  // namespace precinct::core
