#include "energy/accounting.hpp"

namespace precinct::energy {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) noexcept {
  broadcast_send_mj += o.broadcast_send_mj;
  broadcast_recv_mj += o.broadcast_recv_mj;
  p2p_send_mj += o.p2p_send_mj;
  p2p_recv_mj += o.p2p_recv_mj;
  p2p_discard_mj += o.p2p_discard_mj;
  channel_discard_mj += o.channel_discard_mj;
  return *this;
}

double EnergyAccountant::charge(std::size_t node, RadioOp op,
                                std::size_t size_bytes) {
  EnergyBreakdown& meter = per_node_.at(node);
  double cost = 0.0;
  switch (op) {
    case RadioOp::kBroadcastSend:
      cost = model_.broadcast_send(size_bytes);
      meter.broadcast_send_mj += cost;
      break;
    case RadioOp::kBroadcastRecv:
      cost = model_.broadcast_recv(size_bytes);
      meter.broadcast_recv_mj += cost;
      break;
    case RadioOp::kP2pSend:
      cost = model_.p2p_send(size_bytes);
      meter.p2p_send_mj += cost;
      break;
    case RadioOp::kP2pRecv:
      cost = model_.p2p_recv(size_bytes);
      meter.p2p_recv_mj += cost;
      break;
    case RadioOp::kP2pDiscard:
      cost = model_.p2p_discard(size_bytes);
      meter.p2p_discard_mj += cost;
      break;
    case RadioOp::kChannelDiscard:
      // Priced with the same discard curve as an overheard unicast: the
      // receiver demodulated the frame before the channel "lost" it.
      cost = model_.p2p_discard(size_bytes);
      meter.channel_discard_mj += cost;
      break;
  }
  return cost;
}

EnergyBreakdown EnergyAccountant::network_total() const noexcept {
  EnergyBreakdown total;
  for (const auto& m : per_node_) total += m;
  return total;
}

}  // namespace precinct::energy
