// Per-node and network-wide energy bookkeeping.
//
// The wireless substrate charges every send/receive/discard here; benches
// read back totals split by traffic class to reproduce the paper's
// "energy per request" metric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "energy/feeney_model.hpp"

namespace precinct::energy {

/// What a radio did with a message; selects the cost curve.
enum class RadioOp : std::uint8_t {
  kBroadcastSend,
  kBroadcastRecv,
  kP2pSend,
  kP2pRecv,
  kP2pDiscard,
  /// A frame the channel model dropped at the receiver: the radio still
  /// burned the receive-and-discard cost (Feeney's discard coefficients)
  /// but the upper layer never saw the frame.
  kChannelDiscard,
};

/// Totals for one node or one aggregate, split by operation.
struct EnergyBreakdown {
  double broadcast_send_mj = 0.0;
  double broadcast_recv_mj = 0.0;
  double p2p_send_mj = 0.0;
  double p2p_recv_mj = 0.0;
  double p2p_discard_mj = 0.0;
  double channel_discard_mj = 0.0;  ///< channel-dropped frames (lossy models)

  [[nodiscard]] double total_mj() const noexcept {
    return broadcast_send_mj + broadcast_recv_mj + p2p_send_mj + p2p_recv_mj +
           p2p_discard_mj + channel_discard_mj;
  }
  EnergyBreakdown& operator+=(const EnergyBreakdown& o) noexcept;
};

/// Charges radio operations against per-node meters using a FeeneyModel.
class EnergyAccountant {
 public:
  EnergyAccountant(FeeneyModel model, std::size_t n_nodes)
      : model_(model), per_node_(n_nodes) {}

  /// Charge node `node` for performing `op` on a `size_bytes` message.
  /// Returns the energy charged (mJ).
  double charge(std::size_t node, RadioOp op, std::size_t size_bytes);

  [[nodiscard]] const EnergyBreakdown& node(std::size_t i) const {
    return per_node_.at(i);
  }
  [[nodiscard]] EnergyBreakdown network_total() const noexcept;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return per_node_.size();
  }
  [[nodiscard]] const FeeneyModel& model() const noexcept { return model_; }

  /// Grow the meter array when nodes join mid-run.
  void ensure_nodes(std::size_t n) {
    if (n > per_node_.size()) per_node_.resize(n);
  }

 private:
  FeeneyModel model_;
  std::vector<EnergyBreakdown> per_node_;
};

}  // namespace precinct::energy
