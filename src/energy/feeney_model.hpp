// Linear per-message energy model (paper §5.1, after Feeney & Nilsson):
//
//   cost = m * size + b
//
// with distinct (m, b) pairs for broadcast vs point-to-point traffic and
// for the sender, the intended receiver, and nodes that overhear and
// discard.  The defaults below follow the measured WaveLAN ratios from
// Feeney's study (the paper cites [6]); all values are configurable so
// other radios can be modeled.
#pragma once

#include <cstddef>

namespace precinct::energy {

/// One linear cost curve: millijoules as a function of message bytes.
struct LinearCost {
  double m_mj_per_byte = 0.0;  ///< incremental cost per payload byte
  double b_mj = 0.0;           ///< fixed per-message overhead

  [[nodiscard]] constexpr double operator()(std::size_t size_bytes) const noexcept {
    return m_mj_per_byte * static_cast<double>(size_bytes) + b_mj;
  }
};

/// The full coefficient set (paper Eqs. 4, 5, 9, 10 plus the discard cost
/// Feeney measures for overheard point-to-point traffic).
struct FeeneyModel {
  LinearCost broadcast_send{1.9e-3, 0.266};   ///< E_bd_sd
  LinearCost broadcast_recv{0.50e-3, 0.056};  ///< E_bd_rv
  LinearCost p2p_send{1.89e-3, 0.246};        ///< E_p2p_sd (incl. MAC handshake)
  LinearCost p2p_recv{0.494e-3, 0.056};       ///< E_p2p_rv
  LinearCost p2p_discard{0.12e-3, 0.024};     ///< overheard unicast, dropped

  /// E_total_bd (paper Eq. 8): one broadcast send plus `receivers`
  /// in-range receives.
  [[nodiscard]] double broadcast_total(std::size_t size_bytes,
                                       double receivers) const noexcept {
    return broadcast_send(size_bytes) + receivers * broadcast_recv(size_bytes);
  }

  /// Cost of one point-to-point hop: sender + intended receiver plus
  /// `overhearers` nodes that receive-and-discard.
  [[nodiscard]] double p2p_hop(std::size_t size_bytes,
                               double overhearers = 0.0) const noexcept {
    return p2p_send(size_bytes) + p2p_recv(size_bytes) +
           overhearers * p2p_discard(size_bytes);
  }
};

/// Expected in-range receiver count zeta = delta * pi * r^2 (paper Eq. 7),
/// with delta = N / A (Eq. 6).  `n_nodes` counts all nodes including the
/// sender; the sender itself is excluded from the result.
[[nodiscard]] double expected_receivers(double n_nodes, double area_m2,
                                        double range_m) noexcept;

}  // namespace precinct::energy
