#include "energy/feeney_model.hpp"

#include <algorithm>
#include <numbers>

namespace precinct::energy {

double expected_receivers(double n_nodes, double area_m2,
                          double range_m) noexcept {
  if (area_m2 <= 0.0 || n_nodes <= 0.0) return 0.0;
  const double delta = n_nodes / area_m2;
  const double zeta = delta * std::numbers::pi * range_m * range_m;
  // Exclude the sender; the disk around it contains at most N - 1 others.
  return std::clamp(zeta - 1.0, 0.0, n_nodes - 1.0);
}

}  // namespace precinct::energy
